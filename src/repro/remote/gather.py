"""Output gathering: merge identical per-node outputs under folded keys.

The ``clush -b`` / ``clubak`` display trick: on a healthy cluster almost
every node prints the same thing, so instead of N lines the operator reads
one line per *distinct* output, keyed by the folded NodeSet that produced
it::

    node[1-399]: ok
    node400: timed out after 30s
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.remote.nodeset import NodeSet
from repro.remote.worker import WorkerResult

__all__ = ["GatheredGroup", "gather", "format_gathered"]


@dataclass(frozen=True)
class GatheredGroup:
    """All nodes that produced one identical (status, rc, output)."""

    nodes: NodeSet
    status: str
    rc: Optional[int]
    output: str

    @property
    def label(self) -> str:
        """What to print after the folded key."""
        if self.output:
            return self.output
        return self.status if self.rc in (0, None) else f"rc={self.rc}"


def gather(results: Iterable[WorkerResult]) -> List[GatheredGroup]:
    """Merge results by identical (status, rc, output).

    Groups come back sorted by their first node name so output is stable
    across runs with the same seed.
    """
    buckets: Dict[Tuple[str, Optional[int], str], List[str]] = {}
    for result in results:
        key = (result.status, result.rc, result.output)
        buckets.setdefault(key, []).append(result.node)
    groups = [GatheredGroup(nodes=NodeSet(nodes), status=status, rc=rc,
                            output=output)
              for (status, rc, output), nodes in buckets.items()]
    return sorted(groups, key=lambda g: next(iter(g.nodes), ""))


def format_gathered(groups: Iterable[GatheredGroup], *,
                    sep: str = ": ") -> str:
    """One line per distinct output: ``<folded-nodeset><sep><output>``.

    Multi-line outputs get a dshbak-style header block instead.
    """
    lines: List[str] = []
    for group in groups:
        folded = group.nodes.fold()
        label = group.label
        if "\n" in label:
            bar = "-" * max(len(folded) + 10, 20)
            lines.append(bar)
            lines.append(f"{folded} ({len(group.nodes)} nodes)")
            lines.append(bar)
            lines.append(label)
        else:
            lines.append(f"{folded}{sep}{label}")
    return "\n".join(lines)
