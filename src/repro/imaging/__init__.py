"""Image management and disk cloning (§4)."""

from repro.imaging.image import (
    DEFAULT_BLOCK_SIZE,
    PREBUILT_IMAGES,
    DiskImage,
    ImageBuilder,
)
from repro.imaging.manager import ConsistencyReport, ImageManager
from repro.imaging.multicast_clone import ACK_TIME, CloneReport, MulticastCloner
from repro.imaging.unicast_clone import (
    ParallelUnicastCloner,
    SequentialUnicastCloner,
)

__all__ = [
    "ACK_TIME",
    "CloneReport",
    "ConsistencyReport",
    "DEFAULT_BLOCK_SIZE",
    "DiskImage",
    "ImageBuilder",
    "ImageManager",
    "MulticastCloner",
    "ParallelUnicastCloner",
    "PREBUILT_IMAGES",
    "SequentialUnicastCloner",
]
