"""Disk images (§4).

An image is the unit the cloning system distributes: an OS + application
payload built on the management host.  Identity is (name, generation); a
deterministic checksum over the metadata stands in for content hashing and
is what consistency checks compare.

"For convenience we offer prebuilt images for cloning, harddisk as well as
NFS boot" — see :data:`PREBUILT_IMAGES`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["DiskImage", "ImageBuilder", "PREBUILT_IMAGES"]

#: default cloning block size (bytes).
DEFAULT_BLOCK_SIZE = 512 * 1024


@dataclass(frozen=True)
class DiskImage:
    """An immutable image generation."""

    name: str
    generation: int
    size: int
    boot_mode: str = "harddisk"          # "harddisk" | "nfs"
    packages: Tuple[str, ...] = ()
    kernel_version: str = "2.4.18"
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("image size must be positive")
        if self.block_size <= 0:
            raise ValueError("block size must be positive")
        if self.boot_mode not in ("harddisk", "nfs"):
            raise ValueError(f"unknown boot mode {self.boot_mode!r}")

    @property
    def n_blocks(self) -> int:
        return -(-self.size // self.block_size)  # ceil division

    @property
    def checksum(self) -> str:
        ident = (f"{self.name}:{self.generation}:{self.size}:"
                 f"{self.boot_mode}:{','.join(self.packages)}:"
                 f"{self.kernel_version}")
        return hashlib.sha1(ident.encode()).hexdigest()[:16]

    def with_packages(self, *packages: str) -> "DiskImage":
        """A new generation with additional packages installed."""
        return DiskImage(
            name=self.name, generation=self.generation + 1,
            size=self.size + 32 * (1 << 20) * len(packages),
            boot_mode=self.boot_mode,
            packages=tuple(sorted(set(self.packages) | set(packages))),
            kernel_version=self.kernel_version,
            block_size=self.block_size)

    def with_kernel(self, version: str) -> "DiskImage":
        """A new generation with an updated kernel (§4: "more easily
        update the kernel on all nodes")."""
        return DiskImage(
            name=self.name, generation=self.generation + 1,
            size=self.size, boot_mode=self.boot_mode,
            packages=self.packages, kernel_version=version,
            block_size=self.block_size)


class ImageBuilder:
    """Builds customized images "with little effort" (§4)."""

    BASE_SIZE = 1536 << 20        # 1.5 GiB base OS payload
    PACKAGE_SIZE = 32 << 20

    def __init__(self, name: str, boot_mode: str = "harddisk"):
        self.name = name
        self.boot_mode = boot_mode
        self._packages: List[str] = []
        self._kernel = "2.4.18"

    def add_packages(self, *packages: str) -> "ImageBuilder":
        self._packages.extend(packages)
        return self

    def set_kernel(self, version: str) -> "ImageBuilder":
        self._kernel = version
        return self

    def build(self, generation: int = 1) -> DiskImage:
        size = self.BASE_SIZE + self.PACKAGE_SIZE * len(self._packages)
        return DiskImage(
            name=self.name, generation=generation, size=size,
            boot_mode=self.boot_mode,
            packages=tuple(sorted(set(self._packages))),
            kernel_version=self._kernel)


PREBUILT_IMAGES: Dict[str, DiskImage] = {
    "compute-harddisk": ImageBuilder("compute-harddisk")
    .add_packages("mpich", "pbs-mom", "monitoring-agent").build(),
    "compute-nfs": ImageBuilder("compute-nfs", boot_mode="nfs")
    .add_packages("mpich", "monitoring-agent").build(),
}
