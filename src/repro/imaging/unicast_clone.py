"""Unicast cloning baselines for the E4 comparison.

The paper's multicast claim only means something against what everyone did
before: pushing the image to each node over TCP.  Two baselines:

* :class:`SequentialUnicastCloner` — one node at a time (rsync-in-a-loop).
  Time grows linearly with node count.
* :class:`ParallelUnicastCloner` — all transfers at once; they share the
  master's NIC and the segment, so aggregate time is *still* linear in node
  count (the bottleneck just moves), but per-node disk writes overlap.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hardware.node import NodeState, SimulatedNode
from repro.imaging.image import DiskImage
from repro.imaging.multicast_clone import CloneReport
from repro.network.fabric import NetworkFabric
from repro.sim import Process, SimKernel

__all__ = ["SequentialUnicastCloner", "ParallelUnicastCloner"]


class _UnicastClonerBase:
    def __init__(self, kernel: SimKernel, fabric: NetworkFabric,
                 master: SimulatedNode):
        self.kernel = kernel
        self.fabric = fabric
        self.master = master

    def clone(self, targets: Sequence[SimulatedNode], image: DiskImage, *,
              reboot: bool = True) -> Process:
        return self.kernel.process(
            self._run(list(targets), image, reboot),
            name=f"{type(self).__name__}:{image.name}")

    def _finish_node(self, node: SimulatedNode, image: DiskImage,
                     reboot: bool):
        if node.disk is None:
            return None  # diskless nodes NFS-boot; nothing to clone
        yield self.kernel.timeout(node.disk.write_time(image.size))
        if not node.is_running():
            return None
        node.disk.install_image(image.name, image.generation,
                                image.checksum, image.size)
        if reboot:
            node.reset()
            reached = yield node.wait_state(NodeState.UP, NodeState.CRASHED,
                                            NodeState.OFF, NodeState.BURNED)
            if reached is not NodeState.UP:
                return None
        return node.hostname

    def _run(self, targets, image, reboot):  # pragma: no cover - abstract
        raise NotImplementedError
        yield


class SequentialUnicastCloner(_UnicastClonerBase):
    """Push the image to one node at a time."""

    def _run(self, targets: List[SimulatedNode], image: DiskImage,
             reboot: bool):
        report = CloneReport(image=image, started_at=self.kernel.now,
                             targets=len(targets))
        finishers = []
        for node in targets:
            if not node.is_running():
                report.skipped.append(node.hostname)
                continue
            yield self.fabric.unicast(self.master, node, image.size,
                                      tag="clone-unicast")
            # Local write + reboot overlaps with the next node's transfer.
            finishers.append(self.kernel.process(
                self._finish_node(node, image, reboot)))
        report.stream_done_at = report.ack_done_at = self.kernel.now
        results = yield self.kernel.all_of(finishers)
        report.cloned = [h for h in results.values() if h is not None]
        report.finished_at = self.kernel.now
        return report


class ParallelUnicastCloner(_UnicastClonerBase):
    """Push the image to every node concurrently (shared bottleneck)."""

    def _run(self, targets: List[SimulatedNode], image: DiskImage,
             reboot: bool):
        report = CloneReport(image=image, started_at=self.kernel.now,
                             targets=len(targets))
        live = [t for t in targets if t.is_running()]
        report.skipped = [t.hostname for t in targets if not t.is_running()]
        transfers = {
            node: self.fabric.unicast(self.master, node, image.size,
                                      tag="clone-unicast")
            for node in live}
        finishers = []
        for node, transfer in transfers.items():
            finishers.append(self.kernel.process(
                self._after_transfer(node, transfer, image, reboot)))
        report.stream_done_at = report.ack_done_at = self.kernel.now
        results = yield self.kernel.all_of(finishers)
        report.cloned = [h for h in results.values() if h is not None]
        report.finished_at = self.kernel.now
        return report

    def _after_transfer(self, node, transfer, image, reboot):
        yield transfer
        result = yield self.kernel.process(
            self._finish_node(node, image, reboot))
        return result
