"""The image manager (§4): library, assignment, and consistency checking.

"Administrators are able to load the OS and applications to build the
required functionality into an image.  Then ClusterWorX automatically
clones the images to selected nodes."  The manager owns the image library,
remembers which image each node *should* run, and audits which image each
node's disk *actually* carries — the "disk image consistency" the section
opens with.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hardware.node import SimulatedNode
from repro.imaging.image import PREBUILT_IMAGES, DiskImage, ImageBuilder

__all__ = ["ImageManager", "ConsistencyReport"]


class ConsistencyReport:
    """Which nodes match their assigned image, and which do not."""

    def __init__(self) -> None:
        self.consistent: List[str] = []
        self.stale: List[str] = []       # older generation of the right image
        self.wrong: List[str] = []       # different image entirely / bare
        self.unassigned: List[str] = []

    @property
    def is_consistent(self) -> bool:
        return not (self.stale or self.wrong)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ConsistencyReport ok={len(self.consistent)} "
                f"stale={len(self.stale)} wrong={len(self.wrong)}>")


class ImageManager:
    """Image library + node assignments."""

    def __init__(self, *, include_prebuilt: bool = True):
        self._images: Dict[str, DiskImage] = {}
        self._assignments: Dict[str, str] = {}  # hostname -> image name
        if include_prebuilt:
            for image in PREBUILT_IMAGES.values():
                self._images[image.name] = image

    # -- library -----------------------------------------------------------
    @property
    def images(self) -> List[DiskImage]:
        return sorted(self._images.values(), key=lambda i: i.name)

    def get(self, name: str) -> DiskImage:
        image = self._images.get(name)
        if image is None:
            raise KeyError(f"no image named {name!r}")
        return image

    def add(self, image: DiskImage) -> None:
        existing = self._images.get(image.name)
        if existing is not None and image.generation <= existing.generation:
            raise ValueError(
                f"image {image.name!r} generation {image.generation} "
                f"does not supersede {existing.generation}")
        self._images[image.name] = image

    def build(self, name: str, *, boot_mode: str = "harddisk",
              packages: Sequence[str] = (),
              kernel: Optional[str] = None) -> DiskImage:
        builder = ImageBuilder(name, boot_mode=boot_mode)
        builder.add_packages(*packages)
        if kernel is not None:
            builder.set_kernel(kernel)
        existing = self._images.get(name)
        generation = existing.generation + 1 if existing else 1
        image = builder.build(generation)
        self._images[name] = image
        return image

    def update_packages(self, name: str, *packages: str) -> DiskImage:
        """New generation of ``name`` with extra packages (§4 "update files
        or packages on the nodes in parallel")."""
        image = self.get(name).with_packages(*packages)
        self._images[name] = image
        return image

    def update_kernel(self, name: str, version: str) -> DiskImage:
        image = self.get(name).with_kernel(version)
        self._images[name] = image
        return image

    # -- assignment ----------------------------------------------------------
    def assign(self, nodes: Sequence[SimulatedNode], image_name: str) -> None:
        self.get(image_name)  # validate
        for node in nodes:
            self._assignments[node.hostname] = image_name

    def assigned_image(self, node: SimulatedNode) -> Optional[DiskImage]:
        name = self._assignments.get(node.hostname)
        return self._images.get(name) if name else None

    # -- consistency -----------------------------------------------------------
    def audit(self, nodes: Sequence[SimulatedNode]) -> ConsistencyReport:
        """Compare every node's installed image against its assignment."""
        report = ConsistencyReport()
        for node in nodes:
            expected = self.assigned_image(node)
            if expected is None:
                report.unassigned.append(node.hostname)
                continue
            installed = (node.disk.installed_image
                         if node.disk is not None else None)
            if installed is None:
                report.wrong.append(node.hostname)
                continue
            name, generation, checksum = installed
            if name != expected.name:
                report.wrong.append(node.hostname)
            elif (generation != expected.generation
                  or checksum != expected.checksum):
                report.stale.append(node.hostname)
            else:
                report.consistent.append(node.hostname)
        return report
