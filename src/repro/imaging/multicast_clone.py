"""Reliable multicast disk cloning (§4).

The protocol, as the paper describes it:

1. all participating nodes listen to the multicast stream, buffering the
   received data locally;
2. once the stream is spread out, nodes acknowledge reception **in a
   round-robin fashion controlled by the cloning host**;
3. a node still lacking image data gets the missing parts during its turn
   of the acknowledging phase, **peer-to-peer with the master**;
4. as soon as a node has all the data, it clones locally and **reboots
   itself to operational mode**.

The headline result this reproduces: "It took about 12 min. to clone and
reboot over 400 nodes of the Lawrence Livermore cluster" on a single fast
Ethernet — possible only because the stream crosses the shared segment
once, regardless of node count.

``protocol_efficiency`` models reliable-multicast pacing overhead (FEC/
rate-limiting so slow receivers keep up); the wire moves ``size /
efficiency`` bytes worth of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.node import NodeState, SimulatedNode
from repro.imaging.image import DiskImage
from repro.network.fabric import NetworkFabric
from repro.network.multicast import MulticastGroup
from repro.sim import Process, SimKernel

__all__ = ["CloneReport", "MulticastCloner"]

#: seconds for a node's acknowledge round-trip in the round-robin phase.
ACK_TIME = 0.05


@dataclass
class CloneReport:
    """Outcome of one cloning run."""

    image: DiskImage
    started_at: float
    stream_done_at: float = 0.0
    ack_done_at: float = 0.0
    finished_at: float = 0.0
    targets: int = 0
    cloned: List[str] = field(default_factory=list)
    #: not running when the run started — never participated.
    skipped: List[str] = field(default_factory=list)
    #: participated but did not finish: died mid-stream, starved the
    #: repair phase past its timeout, or failed the post-clone reboot.
    failed: List[str] = field(default_factory=list)
    repaired_blocks: Dict[str, int] = field(default_factory=dict)
    repair_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return self.finished_at - self.started_at

    @property
    def stream_seconds(self) -> float:
        return self.stream_done_at - self.started_at

    @property
    def repair_seconds(self) -> float:
        return self.ack_done_at - self.stream_done_at


class MulticastCloner:
    """Clones an image from the management host over reliable multicast."""

    def __init__(self, kernel: SimKernel, fabric: NetworkFabric,
                 master: SimulatedNode, *, rng: np.random.Generator,
                 loss_rate: float = 0.002,
                 protocol_efficiency: float = 0.45,
                 repair_timeout: float = 120.0):
        if not 0 < protocol_efficiency <= 1:
            raise ValueError("protocol_efficiency must be in (0, 1]")
        if repair_timeout <= 0:
            raise ValueError("repair_timeout must be > 0")
        self.kernel = kernel
        self.fabric = fabric
        self.master = master
        self.rng = rng
        self.loss_rate = loss_rate
        self.protocol_efficiency = protocol_efficiency
        #: bound on one node's peer-repair turn: a node that dies (or a
        #: NIC that stalls) mid-repair must not wedge the whole run.
        self.repair_timeout = repair_timeout

    def clone(self, targets: Sequence[SimulatedNode], image: DiskImage, *,
              reboot: bool = True) -> Process:
        """Start a cloning run; the process's value is a :class:`CloneReport`."""
        return self.kernel.process(
            self._run(list(targets), image, reboot),
            name=f"clone:{image.name}@{image.generation}")

    # ------------------------------------------------------------------
    def _run(self, targets: List[SimulatedNode], image: DiskImage,
             reboot: bool):
        report = CloneReport(image=image, started_at=self.kernel.now,
                             targets=len(targets))
        live = [t for t in targets if t.is_running()]
        report.skipped = [t.hostname for t in targets if not t.is_running()]

        if not live:
            report.stream_done_at = report.ack_done_at = \
                report.finished_at = self.kernel.now
            return report

        # Phase 1: the multicast stream (one pass over the shared segment).
        group = MulticastGroup(self.fabric, f"239.0.0.{image.generation}",
                               rng=self.rng, loss_rate=self.loss_rate)
        for node in live:
            group.join(node)
        wire_blocks = int(np.ceil(image.n_blocks / self.protocol_efficiency))
        stream_done, missing = group.stream_blocks(
            self.master, wire_blocks, image.block_size, tag="clone-stream")
        yield stream_done
        # The loss model was drawn over wire blocks; clamp to image blocks.
        for host in missing:
            missing[host] = {b for b in missing[host] if b < image.n_blocks}
        report.stream_done_at = self.kernel.now

        # Phase 2: round-robin acknowledge + peer-to-peer repair.  Each
        # turn is bounded: a node dying mid-repair fails out of the run
        # instead of stalling everyone behind it in the round-robin.
        for node in live:
            yield self.kernel.timeout(ACK_TIME)
            if not node.is_running():
                # Died while buffering: it consumed stream data, so it
                # failed the run (vs. never having participated).
                report.failed.append(node.hostname)
                continue
            lost = missing.get(node.hostname, set())
            if lost:
                nbytes = len(lost) * image.block_size
                report.repaired_blocks[node.hostname] = len(lost)
                report.repair_bytes += nbytes
                done = self.fabric.unicast(self.master, node, nbytes,
                                           tag="clone-repair")
                fired = yield self.kernel.any_of(
                    [done, self.kernel.timeout(self.repair_timeout)])
                if done not in fired:
                    report.failed.append(node.hostname)
        report.ack_done_at = self.kernel.now

        # Phase 3: local clone + reboot, all nodes in parallel.
        finishers = []
        for node in live:
            if node.hostname in report.failed:
                continue
            finishers.append((node, self.kernel.process(
                self._finish_node(node, image, reboot),
                name=f"clone-local:{node.hostname}")))
        results = yield self.kernel.all_of(p for _, p in finishers)
        for node, event in finishers:
            status = results.get(event)
            if status == "cloned":
                report.cloned.append(node.hostname)
            elif status == "failed":
                report.failed.append(node.hostname)
            # "diskless" stays uncounted: NFS-root, nothing to clone.
        report.finished_at = self.kernel.now
        return report

    def _finish_node(self, node: SimulatedNode, image: DiskImage,
                     reboot: bool):
        if node.disk is None:
            return "diskless"  # diskless nodes NFS-boot; nothing to clone
        # Local write of the buffered image to disk.
        yield self.kernel.timeout(node.disk.write_time(image.size))
        if not node.is_running():
            return "failed"
        node.disk.install_image(image.name, image.generation,
                                image.checksum, image.size)
        if reboot:
            node.reset()
            reached = yield node.wait_state(NodeState.UP, NodeState.CRASHED,
                                            NodeState.OFF, NodeState.BURNED)
            if reached is not NodeState.UP:
                return "failed"
        return "cloned"
