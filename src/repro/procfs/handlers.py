"""Content generators for the simulated /proc files.

Each handler is a pure function ``(node, t) -> str`` producing the same
layout a Linux 2.4 kernel (the paper's testbed ran 2.4.x on a 1 GHz
Pentium III) would emit.  Generation cost is *honest work* — real string
formatting proportional to the file's complexity — which is what makes the
per-file gathering-cost ordering of §5.3.1 (stat > meminfo > net/dev >
loadavg > uptime) emerge structurally rather than by tuning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode

__all__ = [
    "gen_cpuinfo",
    "gen_interrupts",
    "gen_loadavg",
    "gen_meminfo",
    "gen_mounts",
    "gen_net_dev",
    "gen_partitions",
    "gen_stat",
    "gen_swaps",
    "gen_uptime",
    "gen_version",
]

#: number of interrupt counters in the /proc/stat ``intr`` line (NR_IRQS).
NR_IRQS = 224


def gen_meminfo(node: "SimulatedNode", t: float) -> str:
    """/proc/meminfo in the 2.4 layout (summary block + kB lines)."""
    total = node.memory.spec.total
    used = node.memory.used(t)
    free = total - used
    cached = node.memory.cached(t)
    buffers = cached // 4
    swap_total = node.memory.spec.swap_total
    swap_used = node.memory.swap_used(t)
    swap_free = swap_total - swap_used
    shared = used // 16
    active = int(used * 0.7) + cached // 2
    inactive = cached // 2 + free // 8
    lines = [
        "        total:    used:    free:  shared: buffers:  cached:",
        f"Mem:  {total} {used} {free} {shared} {buffers} {cached}",
        f"Swap: {swap_total} {swap_used} {swap_free}",
        f"MemTotal:     {total // 1024:>8} kB",
        f"MemFree:      {free // 1024:>8} kB",
        f"MemShared:    {shared // 1024:>8} kB",
        f"Buffers:      {buffers // 1024:>8} kB",
        f"Cached:       {cached // 1024:>8} kB",
        f"SwapCached:   {0:>8} kB",
        f"Active:       {active // 1024:>8} kB",
        f"Inactive:     {inactive // 1024:>8} kB",
        f"HighTotal:    {0:>8} kB",
        f"HighFree:     {0:>8} kB",
        f"LowTotal:     {total // 1024:>8} kB",
        f"LowFree:      {free // 1024:>8} kB",
        f"SwapTotal:    {swap_total // 1024:>8} kB",
        f"SwapFree:     {swap_free // 1024:>8} kB",
    ]
    return "\n".join(lines) + "\n"


def gen_stat(node: "SimulatedNode", t: float) -> str:
    """/proc/stat: aggregate + per-cpu jiffies, the long intr line, etc.

    The ``intr`` line carries ``NR_IRQS`` counters — that bulk is why
    gathering /proc/stat costs more per call than /proc/meminfo in the
    paper's Table (35 us vs 29.5 us).
    """
    j = node.cpu.jiffies(t)
    boot = node.boot_completed_at or 0.0
    uptime = node.uptime(t)
    total_intr = int(uptime * 150)  # timer+devices at ~150 irq/s
    irq_counts = [0] * NR_IRQS
    irq_counts[0] = int(uptime * 100)            # timer
    if node.disk is not None:
        irq_counts[14] = node.disk.read_bytes(t) // 4096
    irq_counts[10] = node.nic.rx_packets(t)
    ctxt = int(uptime * 400)
    processes = 80 + int(uptime / 10)
    lines = [
        f"cpu  {j['user']} {j['nice']} {j['system']} {j['idle']}",
    ]
    cores = node.cpu.spec.cores
    for core in range(cores):
        lines.append(
            f"cpu{core} {j['user'] // cores} {j['nice'] // cores} "
            f"{j['system'] // cores} {j['idle'] // cores}")
    lines += [
        "intr " + str(total_intr) + " " + " ".join(map(str, irq_counts)),
        f"ctxt {ctxt}",
        f"btime {int(boot)}",
        f"processes {processes}",
        f"procs_running {max(1, int(node.cpu.demand(t)) + 1)}",
        "procs_blocked 0",
        # 2.4-era disk_io summary line.
        ("disk_io: (3,0):(%d,%d,0,0,0)"
         % (node.disk.read_bytes(t) // 512,
            node.disk.write_bytes(t) // 512))
        if node.disk is not None else "disk_io:",
    ]
    return "\n".join(lines) + "\n"


def gen_loadavg(node: "SimulatedNode", t: float) -> str:
    """/proc/loadavg: three averages + runnable/total + last pid."""
    load1 = node.cpu.loadavg(t)
    load5 = load1 * 0.9
    load15 = load1 * 0.8
    running = max(1, int(node.cpu.demand(t)) + 1)
    total = 70 + int(node.uptime(t) / 60) % 30
    last_pid = 1000 + int(node.uptime(t)) % 30000
    return (f"{load1:.2f} {load5:.2f} {load15:.2f} "
            f"{running}/{total} {last_pid}\n")


def gen_uptime(node: "SimulatedNode", t: float) -> str:
    """/proc/uptime: uptime seconds and cumulative idle seconds."""
    up = node.uptime(t)
    idle = up * (1.0 - node.cpu.utilization(t))
    return f"{up:.2f} {idle:.2f}\n"


def gen_net_dev(node: "SimulatedNode", t: float) -> str:
    """/proc/net/dev: two header lines then one line per interface."""
    header = (
        "Inter-|   Receive                                                "
        "|  Transmit\n"
        " face |bytes    packets errs drop fifo frame compressed multicast"
        "|bytes    packets errs drop fifo colls carrier compressed\n")
    rows = []
    rows.append(
        "    lo:{rb:>8} {rp:>7}    0    0    0     0          0         0 "
        "{rb:>8} {rp:>7}    0    0    0     0       0          0".format(
            rb=1024, rp=16))
    for nic in node.nics:
        rx, tx = nic.rx_bytes(t), nic.tx_bytes(t)
        rows.append(
            f"  {nic.spec.name}:{rx:>8} {nic.rx_packets(t):>7} "
            f"{nic.errors:>4}    0    0     0          0         0 "
            f"{tx:>8} {nic.tx_packets(t):>7}    0    0    0     0"
            f"       0          0")
    return header + "\n".join(rows) + "\n"


def gen_version(node: "SimulatedNode", t: float) -> str:
    """/proc/version (static)."""
    return ("Linux version 2.4.18 (root@buildhost) "
            "(gcc version 2.96 20000731) "
            "#1 SMP Mon Feb 25 2002\n")


def gen_interrupts(node: "SimulatedNode", t: float) -> str:
    """/proc/interrupts in the 2.4 single-CPU layout."""
    up = node.uptime(t)
    rows = [
        ("0", int(up * 100), "XT-PIC", "timer"),
        ("1", 12, "XT-PIC", "keyboard"),
        ("2", 0, "XT-PIC", "cascade"),
        ("10", node.nic.rx_packets(t), "XT-PIC", "eth0"),
        ("14", (node.disk.read_bytes(t) // 4096)
         if node.disk is not None else 0, "XT-PIC", "ide0"),
    ]
    lines = ["           CPU0       "]
    for irq, count, chip, device in rows:
        lines.append(f"{irq:>3}: {count:>10}   {chip}  {device}")
    lines.append(f"NMI: {0:>10}")
    lines.append(f"ERR: {0:>10}")
    return "\n".join(lines) + "\n"


def gen_partitions(node: "SimulatedNode", t: float) -> str:
    """/proc/partitions."""
    lines = ["major minor  #blocks  name", ""]
    for idx, disk in enumerate(node.disks):
        blocks = disk.spec.capacity // 1024
        lines.append(f"   3  {idx * 64:>4} {blocks:>10} {disk.name}")
        lines.append(f"   3  {idx * 64 + 1:>4} {blocks - 1024:>10} "
                     f"{disk.name}1")
    return "\n".join(lines) + "\n"


def gen_swaps(node: "SimulatedNode", t: float) -> str:
    """/proc/swaps."""
    if node.disk is None:
        return "Filename\t\t\tType\t\tSize\tUsed\tPriority\n"
    total_kb = node.memory.spec.swap_total // 1024
    used_kb = node.memory.swap_used(t) // 1024
    return ("Filename\t\t\tType\t\tSize\tUsed\tPriority\n"
            f"/dev/{node.disk.name}2\t\t\tpartition\t{total_kb}\t"
            f"{used_kb}\t-1\n")


def gen_mounts(node: "SimulatedNode", t: float) -> str:
    """/proc/mounts: reflects the installed image's boot mode."""
    installed = node.disk.installed_image if node.disk is not None \
        else None
    root = (f"{node.ip.rsplit('.', 1)[0]}.1:/export/root"
            if installed is None else f"/dev/{node.disk.name}1")
    fstype = "nfs" if installed is None else "ext2"
    lines = [
        f"{root} / {fstype} rw 0 0",
        "none /proc proc rw 0 0",
        "none /dev/pts devpts rw 0 0",
    ]
    return "\n".join(lines) + "\n"


def gen_cpuinfo(node: "SimulatedNode", t: float) -> str:
    """/proc/cpuinfo (static per node)."""
    spec = node.cpu.spec
    blocks = []
    for core in range(spec.cores):
        blocks.append("\n".join([
            f"processor\t: {core}",
            f"vendor_id\t: {spec.vendor}",
            "cpu family\t: 6",
            "model\t\t: 8",
            f"model name\t: {spec.model_name}",
            "stepping\t: 3",
            f"cpu MHz\t\t: {spec.mhz:.3f}",
            f"cache size\t: {spec.cache_kb} KB",
            "fdiv_bug\t: no",
            "fpu\t\t: yes",
            f"bogomips\t: {spec.mhz * 1.99:.2f}",
        ]))
    return "\n\n".join(blocks) + "\n"
