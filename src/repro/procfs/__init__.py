"""Simulated /proc virtual filesystem with kernel-faithful read semantics."""

from repro.procfs.filesystem import ProcError, ProcFile, ProcFilesystem
from repro.procfs.handlers import (
    gen_cpuinfo,
    gen_interrupts,
    gen_loadavg,
    gen_meminfo,
    gen_mounts,
    gen_net_dev,
    gen_partitions,
    gen_stat,
    gen_swaps,
    gen_uptime,
    gen_version,
)

__all__ = [
    "ProcError",
    "ProcFile",
    "ProcFilesystem",
    "gen_cpuinfo",
    "gen_interrupts",
    "gen_loadavg",
    "gen_meminfo",
    "gen_mounts",
    "gen_net_dev",
    "gen_partitions",
    "gen_stat",
    "gen_swaps",
    "gen_uptime",
    "gen_version",
]
