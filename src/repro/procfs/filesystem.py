"""The simulated /proc virtual filesystem.

Semantics copied from the behaviour §5.3.1 singles out as "a crucial point
for efficiency": *each time a proc file is read, a handler is called to
generate the data; the entire file is reconstructed whether a single
character or a large block is read.*  Concretely:

* every ``read``/``readline`` call invokes the file's handler to regenerate
  the **full** content, then serves the requested slice from it;
* ``open`` resolves the path and allocates a handle, paying an emulated
  kernel-crossing cost;
* ``seek(0)`` is cheap — which is precisely why the paper's fourth
  optimization (keep the file open, rewind between samples) wins.

Syscall emulation: a real ``open(2)``+``close(2)`` pair on the paper's
1 GHz Pentium III costs on the order of the whole optimized gather.  Pure
Python attribute access cannot reproduce that boundary, so each simulated
syscall burns a small, fixed amount of *genuine* CPU work
(:func:`_burn`).  The amount is a constructor parameter; DESIGN.md records
this as an explicit substitution.  Relative rung-to-rung gains in E1 come
from structure (per-read regeneration, parser generation), not from this
constant.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.procfs import handlers as _h

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import SimulatedNode

__all__ = ["ProcFilesystem", "ProcFile", "ProcError"]

_BURN_BUF = b"\x5a" * 64


def _burn(units: int) -> int:
    """Do ``units`` quanta of real CPU work (emulated kernel crossing)."""
    acc = 0
    for _ in range(units):
        acc = zlib.crc32(_BURN_BUF, acc)
    return acc


class ProcError(OSError):
    """Raised for bad paths or operations on closed handles."""


class ProcFile:
    """An open handle onto one proc file."""

    def __init__(self, fs: "ProcFilesystem", path: str,
                 handler: Callable[["SimulatedNode", float], str]):
        self._fs = fs
        self.path = path
        self._handler = handler
        self._offset = 0
        self._closed = False

    def _regenerate(self) -> str:
        # The handler rebuilds the entire file on every read; this is the
        # kernel behaviour the gathering ladder exploits/avoids.
        self._fs.stats["regenerations"] += 1
        return self._handler(self._fs.node, self._fs.clock())

    def read(self, size: int = -1) -> str:
        if self._closed:
            raise ProcError("read on closed file")
        self._fs.stats["reads"] += 1
        _burn(self._fs.read_units)
        content = self._regenerate()
        if self._offset >= len(content):
            return ""
        if size is None or size < 0:
            chunk = content[self._offset:]
        else:
            chunk = content[self._offset:self._offset + size]
        self._offset += len(chunk)
        return chunk

    def readline(self) -> str:
        if self._closed:
            raise ProcError("readline on closed file")
        self._fs.stats["reads"] += 1
        _burn(self._fs.read_units)
        content = self._regenerate()
        if self._offset >= len(content):
            return ""
        end = content.find("\n", self._offset)
        if end == -1:
            end = len(content) - 1
        line = content[self._offset:end + 1]
        self._offset = end + 1
        return line

    def seek(self, offset: int, whence: int = 0) -> int:
        if self._closed:
            raise ProcError("seek on closed file")
        if whence != 0:
            raise ProcError("proc files only support SEEK_SET")
        if offset != 0:
            raise ProcError("proc files only support rewinding to 0")
        _burn(self._fs.seek_units)
        self._offset = 0
        return 0

    def close(self) -> None:
        if not self._closed:
            _burn(self._fs.close_units)
            self._closed = True
            self._fs._open_handles.discard(id(self))

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ProcFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcFilesystem:
    """Per-node /proc with registerable handlers.

    ``clock`` supplies the current simulation time; by default the node's
    kernel clock.  ``syscall profile`` parameters set the emulated cost of
    each kernel crossing in work quanta (see :func:`_burn`).
    """

    DEFAULT_FILES: Dict[str, Callable] = {
        "/proc/meminfo": _h.gen_meminfo,
        "/proc/stat": _h.gen_stat,
        "/proc/loadavg": _h.gen_loadavg,
        "/proc/uptime": _h.gen_uptime,
        "/proc/net/dev": _h.gen_net_dev,
        "/proc/cpuinfo": _h.gen_cpuinfo,
        "/proc/version": _h.gen_version,
        "/proc/interrupts": _h.gen_interrupts,
        "/proc/partitions": _h.gen_partitions,
        "/proc/swaps": _h.gen_swaps,
        "/proc/mounts": _h.gen_mounts,
    }

    def __init__(self, node: "SimulatedNode", *,
                 clock: Callable[[], float] | None = None,
                 open_units: int = 150, close_units: int = 30,
                 read_units: int = 8, seek_units: int = 2):
        self.node = node
        self.clock = clock if clock is not None else (lambda: node.kernel.now)
        self.open_units = open_units
        self.close_units = close_units
        self.read_units = read_units
        self.seek_units = seek_units
        self._files: Dict[str, Callable] = dict(self.DEFAULT_FILES)
        self._open_handles: set[int] = set()
        self.stats = {"opens": 0, "reads": 0, "regenerations": 0}

    def register(self, path: str,
                 handler: Callable[["SimulatedNode", float], str]) -> None:
        """Add or replace a proc file (plug-in monitors use this)."""
        if not path.startswith("/proc/"):
            raise ValueError("proc paths must start with /proc/")
        self._files[path] = handler

    def listdir(self, path: str = "/proc") -> List[str]:
        prefix = path.rstrip("/") + "/"
        names = set()
        for p in self._files:
            if p.startswith(prefix):
                names.add(p[len(prefix):].split("/", 1)[0])
        if not names and path.rstrip("/") not in ("/proc",):
            raise ProcError(f"no such directory: {path}")
        return sorted(names)

    def exists(self, path: str) -> bool:
        return path in self._files

    def open(self, path: str) -> ProcFile:
        self.stats["opens"] += 1
        _burn(self.open_units)
        handler = self._files.get(path)
        if handler is None:
            raise ProcError(f"no such file: {path}")
        handle = ProcFile(self, path, handler)
        self._open_handles.add(id(handle))
        return handle

    def read_text(self, path: str) -> str:
        """Convenience one-shot read (open + read + close)."""
        f = self.open(path)
        try:
            return f.read()
        finally:
            f.close()
