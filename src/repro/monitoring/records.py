"""The typed monitoring delta record shared by every layer.

:class:`Update` is the value that replaces bare ``(hostname, t, dict)``
triples end-to-end: agents emit it, the wire carries its values, the
server's state store applies it, subscribers receive it.  It lives here
— in the monitoring layer, below the server — because the *producers*
sit lowest in the stack: a node agent must be able to construct one
without dragging in the tier-2 server (that upward import was exactly
the layering violation WORX101 now forbids).  The store re-exports it
from :mod:`repro.core.statestore` for consumers that think in tier-2
terms.

The module is deliberately dependency-free (stdlib only) so every layer
of the stack can import the type without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping, Tuple

__all__ = ["Update", "Sample"]


@dataclass(frozen=True)
class Update:
    """One typed monitoring delta: who, when, what, from where.

    ``values`` is frozen at construction (a mapping proxy over a private
    copy), so an Update can be fanned out to any number of subscribers
    and stored without defensive copying.
    """

    hostname: str
    time: float
    values: Mapping[str, object]
    source: str = "agent"
    seq: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "values",
                           MappingProxyType(dict(self.values)))

    def __len__(self) -> int:
        return len(self.values)

    def numeric_items(self) -> Iterator[Tuple[str, float]]:
        """The (name, float value) subset history cares about."""
        for name, value in self.values.items():
            if isinstance(value, bool):
                yield name, float(int(value))
            elif isinstance(value, (int, float)):
                yield name, float(value)


#: A sample *is* an update — the agent-side name for the same value.
Sample = Update
