"""Monitoring: gathering, consolidation, transmission, history (§5.1, §5.3)."""

from repro.monitoring.agent import PER_SAMPLE_CPU_SECONDS, NodeAgent
from repro.monitoring.consolidation import Consolidator
from repro.monitoring.gathering import (
    GATHER_PATHS,
    AprioriGatherer,
    BufferedGatherer,
    BytesPersistentGatherer,
    Gatherer,
    NaiveGatherer,
    PersistentGatherer,
    make_gatherer,
    parse_apriori,
    parse_generic,
)
from repro.monitoring.history import HistoryStore, TieredHistory
from repro.monitoring.monitors import (
    Monitor,
    MonitorContext,
    MonitorRegistry,
    builtin_registry,
)
from repro.monitoring.plugins import (
    PluginError,
    ScriptMonitor,
    load_plugin_dir,
    register_function,
)
from repro.monitoring.records import Sample, Update
from repro.monitoring.transmission import (
    BinaryCodec,
    TextCodec,
    Transmitter,
    decode_update,
)

__all__ = [
    "AprioriGatherer",
    "BinaryCodec",
    "BufferedGatherer",
    "BytesPersistentGatherer",
    "Consolidator",
    "GATHER_PATHS",
    "Gatherer",
    "HistoryStore",
    "Monitor",
    "MonitorContext",
    "MonitorRegistry",
    "NaiveGatherer",
    "NodeAgent",
    "PER_SAMPLE_CPU_SECONDS",
    "PersistentGatherer",
    "PluginError",
    "Sample",
    "ScriptMonitor",
    "TextCodec",
    "TieredHistory",
    "Transmitter",
    "Update",
    "builtin_registry",
    "decode_update",
    "load_plugin_dir",
    "make_gatherer",
    "parse_apriori",
    "parse_generic",
    "register_function",
]
