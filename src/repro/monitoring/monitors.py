"""Built-in monitors (§5.1): "ClusterWorX can virtually monitor any system
function ... It comes standard with over 40 monitors built in."

A :class:`Monitor` maps a name to a function over a :class:`MonitorContext`
(the node, the sim time, and — when the agent runs in procfs mode — the
parsed proc samples).  ``static`` monitors (CPU type, total memory, ...)
are the values the consolidation stage transmits only once.

The registry below defines 50+ monitors across the sources the paper
lists: /proc-derived CPU/memory/network/disk statistics, lm_sensors-style
readings, identification data, and the UDP-echo connectivity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.hardware.node import SimulatedNode

__all__ = ["Monitor", "MonitorContext", "MonitorRegistry",
           "builtin_registry"]


@dataclass
class MonitorContext:
    """What a monitor function sees when evaluated."""

    node: SimulatedNode
    t: float
    #: parsed proc samples when the agent gathers via procfs (else None).
    proc: Optional[Dict[str, Dict]] = None


@dataclass(frozen=True)
class Monitor:
    """One named metric."""

    name: str
    fn: Callable[[MonitorContext], object]
    static: bool = False
    units: str = ""
    source: str = "system"

    def evaluate(self, ctx: MonitorContext):
        return self.fn(ctx)


class MonitorRegistry:
    """Named collection of monitors; plug-ins add to it at runtime.

    A registry may carry a *fast sampler*: a single straight-line function
    equivalent to :meth:`evaluate_all` for the exact monitor set it was
    built for.  Any mutation of the monitor set invalidates it (the agent
    then falls back to the generic per-monitor loop).
    """

    def __init__(self) -> None:
        self._monitors: Dict[str, Monitor] = {}
        self._sorted: Optional[List[Monitor]] = None
        #: equivalent one-shot sampler ``fn(ctx) -> dict`` or None.
        self.fast_sampler: Optional[
            Callable[["MonitorContext"], Dict[str, object]]] = None

    def _invalidate(self) -> None:
        self._sorted = None
        self.fast_sampler = None

    def add(self, monitor: Monitor) -> None:
        if monitor.name in self._monitors:
            raise ValueError(f"monitor {monitor.name!r} already registered")
        self._monitors[monitor.name] = monitor
        self._invalidate()

    def replace(self, monitor: Monitor) -> None:
        self._monitors[monitor.name] = monitor
        self._invalidate()

    def remove(self, name: str) -> None:
        del self._monitors[name]
        self._invalidate()

    def get(self, name: str) -> Monitor:
        return self._monitors[name]

    def __contains__(self, name: str) -> bool:
        return name in self._monitors

    def __len__(self) -> int:
        return len(self._monitors)

    @property
    def names(self) -> List[str]:
        return sorted(self._monitors)

    def monitors(self) -> List[Monitor]:
        if self._sorted is None:
            self._sorted = [self._monitors[n] for n in sorted(self._monitors)]
        return self._sorted

    def static_names(self) -> List[str]:
        return [m.name for m in self.monitors() if m.static]

    def evaluate_all(self, ctx: MonitorContext) -> Dict[str, object]:
        return {m.name: m.evaluate(ctx) for m in self.monitors()}


# ---------------------------------------------------------------------------
# Builtin definitions
# ---------------------------------------------------------------------------

def _mon(registry, name, fn, *, static=False, units="", source="system"):
    registry.add(Monitor(name=name, fn=fn, static=static, units=units,
                         source=source))


def _fast_builtin_sample(ctx: MonitorContext) -> Dict[str, object]:
    """Straight-line equivalent of ``evaluate_all`` for the builtin set.

    Evaluating 55 separate lambdas costs a Python call, a context attribute
    walk, and (for the dozen monitors sharing cpu/thermal reads) a repeated
    pure model read each.  All hardware model reads are pure functions of
    ``t``, so one function can hoist the shared subexpressions and emit the
    whole sample at once — value-identical, in the same sorted-key order
    the generic loop produces (asserted by the test suite).
    """
    node = ctx.node
    t = ctx.t
    cpu = node.cpu
    spec = cpu.spec
    mem = node.memory
    nic = node.nic
    disk = node.disk
    thermal = node.thermal
    psu = node.psu
    volts = node.voltages
    running = node.is_running()
    state = node.state.value
    util = cpu.utilization(t)
    jiffies = cpu.jiffies(t)
    load = cpu.loadavg(t)
    temp = thermal.temperature(t)
    ambient = thermal.spec.ambient
    swap_used = mem.swap_used(t)
    image = disk.installed_image if disk else None
    return {
        "board_temp_c": round(ambient + 0.4 * (temp - ambient), 2),
        "bogomips": round(spec.mhz * 1.99, 2),
        "cpu_cache_kb": spec.cache_kb,
        "cpu_count": spec.cores,
        "cpu_idle_jiffies": jiffies["idle"],
        "cpu_mhz": spec.mhz,
        "cpu_model": spec.model_name,
        "cpu_system_jiffies": jiffies["system"],
        "cpu_temp_c": round(temp, 2),
        "cpu_user_jiffies": jiffies["user"],
        "cpu_util_pct": round(util * 100.0, 2),
        "cpu_vendor": spec.vendor,
        "disk_image": image[0] if image else "none",
        "disk_image_generation": image[1] if image else 0,
        "disk_read_bytes": disk.read_bytes(t) if disk else 0,
        "disk_total_bytes": disk.spec.capacity if disk else 0,
        "disk_used_bytes": disk.used if disk else 0,
        "disk_util_pct": (round(disk.utilization(t) * 100.0, 2)
                          if disk else 0.0),
        "disk_write_bytes": disk.write_bytes(t) if disk else 0,
        "fan1_rpm": round(thermal.fan.rpm(util if running else 0.0)),
        "hostname": node.hostname,
        "ip_address": node.ip,
        "kernel_version": "2.4.18",
        "load_15min": round(load * 0.8, 2),
        "load_1min": round(load, 2),
        "load_5min": round(load * 0.9, 2),
        "mac_address": node.mac,
        "mem_cached_bytes": mem.cached(t),
        "mem_free_bytes": mem.free(t),
        "mem_total_bytes": mem.spec.total,
        "mem_used_bytes": mem.used(t),
        "mem_util_pct": round(mem.utilization(t) * 100.0, 2),
        "net_errors": nic.errors,
        "net_link_mbps": round(nic.effective_rate * 8 / 1e6, 1),
        "net_rx_bytes": nic.rx_bytes(t),
        "net_rx_packets": nic.rx_packets(t),
        "net_tx_bytes": nic.tx_bytes(t),
        "net_tx_packets": nic.tx_packets(t),
        "net_util_pct": round(nic.utilization(t) * 100.0, 2),
        "node_state": state,
        "node_up": 1 if running else 0,
        "os_release": "Linux NetworX CLS 7.2",
        "procs_running": (max(1, int(cpu.demand(t)) + 1)
                          if running else 0),
        "psu_ok": 0 if psu.failed else 1,
        "psu_volts": round(psu.probe_voltage(t), 2),
        "psu_watts": round(psu.steady_draw(t), 1),
        "swap_activity": 1 if swap_used > 0 else 0,
        "swap_total_bytes": mem.spec.swap_total,
        "swap_used_bytes": swap_used,
        "udp_echo": (1 if (running and state != "hung"
                           and nic.health > 0.05) else 0),
        "uptime_seconds": round(node.uptime(t), 2),
        "v12_volts": round(volts["12v"].read(), 3),
        "v3_3_volts": round(volts["3.3v"].read(), 3),
        "v5_volts": round(volts["5v"].read(), 3),
        "vcore_volts": round(volts["vcore"].read(), 3),
    }


def builtin_registry() -> MonitorRegistry:
    """The standard set shipped with the framework (50+ monitors)."""
    r = MonitorRegistry()
    n = lambda ctx: ctx.node  # noqa: E731 - brevity in the table below

    # -- identification (static) ----------------------------------------
    _mon(r, "hostname", lambda c: c.node.hostname, static=True)
    _mon(r, "ip_address", lambda c: c.node.ip, static=True)
    _mon(r, "mac_address", lambda c: c.node.mac, static=True)
    _mon(r, "kernel_version", lambda c: "2.4.18", static=True)
    _mon(r, "os_release", lambda c: "Linux NetworX CLS 7.2", static=True)

    # -- cpu identification (static, from /proc/cpuinfo) ------------------
    _mon(r, "cpu_model", lambda c: c.node.cpu.spec.model_name,
         static=True, source="proc")
    _mon(r, "cpu_mhz", lambda c: c.node.cpu.spec.mhz,
         static=True, units="MHz", source="proc")
    _mon(r, "cpu_count", lambda c: c.node.cpu.spec.cores,
         static=True, source="proc")
    _mon(r, "cpu_cache_kb", lambda c: c.node.cpu.spec.cache_kb,
         static=True, units="kB", source="proc")
    _mon(r, "cpu_vendor", lambda c: c.node.cpu.spec.vendor,
         static=True, source="proc")
    _mon(r, "bogomips", lambda c: round(c.node.cpu.spec.mhz * 1.99, 2),
         static=True, source="proc")

    # -- cpu dynamics (/proc/stat, /proc/loadavg) --------------------------
    _mon(r, "cpu_util_pct",
         lambda c: round(c.node.cpu.utilization(c.t) * 100.0, 2),
         units="%", source="proc")
    _mon(r, "cpu_user_jiffies",
         lambda c: c.node.cpu.jiffies(c.t)["user"], source="proc")
    _mon(r, "cpu_system_jiffies",
         lambda c: c.node.cpu.jiffies(c.t)["system"], source="proc")
    _mon(r, "cpu_idle_jiffies",
         lambda c: c.node.cpu.jiffies(c.t)["idle"], source="proc")
    _mon(r, "load_1min", lambda c: round(c.node.cpu.loadavg(c.t), 2),
         source="proc")
    _mon(r, "load_5min", lambda c: round(c.node.cpu.loadavg(c.t) * 0.9, 2),
         source="proc")
    _mon(r, "load_15min", lambda c: round(c.node.cpu.loadavg(c.t) * 0.8, 2),
         source="proc")
    _mon(r, "procs_running",
         lambda c: max(1, int(c.node.cpu.demand(c.t)) + 1)
         if c.node.is_running() else 0, source="proc")

    # -- memory (/proc/meminfo) ---------------------------------------------
    _mon(r, "mem_total_bytes", lambda c: c.node.memory.spec.total,
         static=True, units="B", source="proc")
    _mon(r, "mem_used_bytes", lambda c: c.node.memory.used(c.t),
         units="B", source="proc")
    _mon(r, "mem_free_bytes", lambda c: c.node.memory.free(c.t),
         units="B", source="proc")
    _mon(r, "mem_cached_bytes", lambda c: c.node.memory.cached(c.t),
         units="B", source="proc")
    _mon(r, "mem_util_pct",
         lambda c: round(c.node.memory.utilization(c.t) * 100.0, 2),
         units="%", source="proc")
    _mon(r, "swap_total_bytes", lambda c: c.node.memory.spec.swap_total,
         static=True, units="B", source="proc")
    _mon(r, "swap_used_bytes", lambda c: c.node.memory.swap_used(c.t),
         units="B", source="proc")

    # -- uptime ----------------------------------------------------------------
    _mon(r, "uptime_seconds", lambda c: round(c.node.uptime(c.t), 2),
         units="s", source="proc")

    # -- network (/proc/net/dev) -------------------------------------------------
    _mon(r, "net_rx_bytes", lambda c: c.node.nic.rx_bytes(c.t),
         units="B", source="proc")
    _mon(r, "net_tx_bytes", lambda c: c.node.nic.tx_bytes(c.t),
         units="B", source="proc")
    _mon(r, "net_rx_packets", lambda c: c.node.nic.rx_packets(c.t),
         source="proc")
    _mon(r, "net_tx_packets", lambda c: c.node.nic.tx_packets(c.t),
         source="proc")
    _mon(r, "net_errors", lambda c: c.node.nic.errors, source="proc")
    _mon(r, "net_util_pct",
         lambda c: round(c.node.nic.utilization(c.t) * 100.0, 2),
         units="%", source="proc")
    _mon(r, "net_link_mbps",
         lambda c: round(c.node.nic.effective_rate * 8 / 1e6, 1),
         units="Mb/s", source="net")

    # -- connectivity: the UDP echo check (§5.1) ---------------------------------
    _mon(r, "udp_echo",
         lambda c: 1 if (c.node.is_running()
                         and c.node.state.value != "hung"
                         and c.node.nic.health > 0.05) else 0,
         source="net")

    # -- disk ----------------------------------------------------------------------
    _mon(r, "disk_total_bytes",
         lambda c: c.node.disk.spec.capacity if c.node.disk else 0,
         static=True, units="B", source="proc")
    _mon(r, "disk_used_bytes",
         lambda c: c.node.disk.used if c.node.disk else 0,
         units="B", source="proc")
    _mon(r, "disk_read_bytes",
         lambda c: c.node.disk.read_bytes(c.t) if c.node.disk else 0,
         units="B", source="proc")
    _mon(r, "disk_write_bytes",
         lambda c: c.node.disk.write_bytes(c.t) if c.node.disk else 0,
         units="B", source="proc")
    _mon(r, "disk_util_pct",
         lambda c: round(c.node.disk.utilization(c.t) * 100.0, 2)
         if c.node.disk else 0.0,
         units="%", source="proc")
    _mon(r, "disk_image",
         lambda c: (c.node.disk.installed_image[0]
                    if c.node.disk and c.node.disk.installed_image
                    else "none"),
         source="system")
    _mon(r, "disk_image_generation",
         lambda c: (c.node.disk.installed_image[1]
                    if c.node.disk and c.node.disk.installed_image
                    else 0),
         source="system")

    # -- sensors (lm_sensors-style, §5.1) --------------------------------------------
    _mon(r, "cpu_temp_c",
         lambda c: round(c.node.thermal.temperature(c.t), 2),
         units="degC", source="sensors")
    _mon(r, "board_temp_c",
         lambda c: round(c.node.thermal.spec.ambient + 0.4 * (
             c.node.thermal.temperature(c.t)
             - c.node.thermal.spec.ambient), 2),
         units="degC", source="sensors")
    _mon(r, "fan1_rpm",
         lambda c: round(c.node.thermal.fan.rpm(
             c.node.cpu.utilization(c.t) if c.node.is_running() else 0.0)),
         units="rpm", source="sensors")
    _mon(r, "vcore_volts", lambda c: round(c.node.voltages["vcore"].read(), 3),
         units="V", source="sensors")
    _mon(r, "v3_3_volts", lambda c: round(c.node.voltages["3.3v"].read(), 3),
         units="V", source="sensors")
    _mon(r, "v5_volts", lambda c: round(c.node.voltages["5v"].read(), 3),
         units="V", source="sensors")
    _mon(r, "v12_volts", lambda c: round(c.node.voltages["12v"].read(), 3),
         units="V", source="sensors")
    _mon(r, "psu_volts", lambda c: round(c.node.psu.probe_voltage(c.t), 2),
         units="V", source="sensors")
    _mon(r, "psu_watts", lambda c: round(c.node.psu.steady_draw(c.t), 1),
         units="W", source="sensors")
    _mon(r, "psu_ok", lambda c: 0 if c.node.psu.failed else 1,
         source="sensors")

    # -- node / management state -----------------------------------------------------
    _mon(r, "node_state", lambda c: c.node.state.value, source="system")
    _mon(r, "node_up", lambda c: 1 if c.node.is_running() else 0,
         source="system")
    _mon(r, "swap_activity",
         lambda c: 1 if c.node.memory.swap_used(c.t) > 0 else 0,
         source="proc")

    # The builtin set ships with a hoisted one-shot sampler; any plugin
    # registration above invalidates it, so it must be set last.
    r.fast_sampler = _fast_builtin_sample
    return r
