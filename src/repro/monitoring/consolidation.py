"""Stage 2 of the monitoring pipeline: consolidation (§5.3.2).

Responsibilities straight from the paper:

* combine data from multiple sources gathered at independent rates;
* distinguish **static** from **dynamic** monitoring data, and transmit
  "only data that has *changed* since the last transmission" — this is
  what "reduces the amount of transferred data substantially";
* cache the consolidated view so "simultaneous requests can be served
  using the same set of data", reducing the burden on the node.

Everything runs on the node (the gatherer is the owner of the data); the
server only ever sees the deltas the consolidator releases.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

__all__ = ["Consolidator"]

_MISSING = object()


class Consolidator:
    """Per-node change-suppressing merge of monitor values."""

    def __init__(self, *, static_names: Iterable[str] = (),
                 deadband: float = 0.0, cache_ttl: float = 1.0):
        """``deadband``: relative change below which a numeric dynamic value
        counts as unchanged (0 = exact comparison).  ``cache_ttl``: how long
        a consolidated snapshot may serve simultaneous requests."""
        if deadband < 0:
            raise ValueError("deadband must be >= 0")
        self.static_names: Set[str] = set(static_names)
        self.deadband = deadband
        self.cache_ttl = cache_ttl
        self._current: Dict[str, object] = {}
        self._transmitted: Dict[str, object] = {}
        self._static_sent: Set[str] = set()
        self._cache_time: Optional[float] = None
        # -- statistics for E6 --
        self.values_seen = 0
        self.values_released = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- merging -------------------------------------------------------------
    def _changed(self, name: str, new: object) -> bool:
        old = self._transmitted.get(name, _MISSING)
        if old is _MISSING:
            return True
        if (self.deadband > 0.0
                and isinstance(new, (int, float))
                and isinstance(old, (int, float))
                and not isinstance(new, bool)):
            # Relative to the last *transmitted* value, so repeated small
            # steps cannot creep arbitrarily far without ever releasing.
            scale = abs(old) if old != 0 else max(abs(new), 1e-12)
            return abs(new - old) / scale > self.deadband
        return new != old

    def update(self, values: Dict[str, object], t: float
               ) -> Dict[str, object]:
        """Merge one gather; return only what must be transmitted.

        Static values are released once (and again only if they actually
        change — e.g. the installed image after a reclone).  Dynamic values
        are released when they differ from the last *transmitted* value by
        more than the deadband.
        """
        delta: Dict[str, object] = {}
        transmitted = self._transmitted
        current = self._current
        static_names = self.static_names
        deadband = self.deadband
        # _changed() inlined: this loop runs once per metric per sample on
        # every node, and the call overhead dominates the comparison.
        for name, value in values.items():
            current[name] = value
            old = transmitted.get(name, _MISSING)
            if old is not _MISSING:
                if deadband > 0.0 \
                        and isinstance(value, (int, float)) \
                        and isinstance(old, (int, float)) \
                        and not isinstance(value, bool):
                    scale = abs(old) if old != 0 \
                        else max(abs(value), 1e-12)
                    if abs(value - old) / scale <= deadband:
                        continue
                elif value == old:
                    continue
            delta[name] = value
            transmitted[name] = value
            if name in static_names:
                self._static_sent.add(name)
        self.values_seen += len(values)
        self.values_released += len(delta)
        self._cache_time = t
        return delta

    @property
    def suppressed(self) -> int:
        """Values absorbed by change suppression so far."""
        return self.values_seen - self.values_released

    @property
    def suppression_ratio(self) -> float:
        if self.values_seen == 0:
            return 0.0
        return self.suppressed / self.values_seen

    # -- the request cache --------------------------------------------------------
    def snapshot(self, t: float, regather=None) -> Dict[str, object]:
        """Serve a full current view; regather only when the cache is stale.

        ``regather`` is a zero-argument callable producing fresh values; it
        is invoked only on cache miss, which is how simultaneous requests
        share one gather.
        """
        if (self._cache_time is not None
                and t - self._cache_time <= self.cache_ttl):
            self.cache_hits += 1
            return dict(self._current)
        self.cache_misses += 1
        if regather is not None:
            fresh = regather()
            self._current.update(fresh)
        self._cache_time = t
        return dict(self._current)

    def force_full_retransmit(self) -> None:
        """Invalidate transmitted state (server reconnect, agent restart)."""
        self._transmitted.clear()
        self._static_sent.clear()
