"""Stage 3 of the monitoring pipeline: transmission (§5.3.3).

The paper's position: keep monitored data "in text form because of platform
independency and the human-readable nature of the data", and recover the
size penalty with compression, "known to be very effective on text input".

:class:`TextCodec` implements exactly that (one ``name value`` line per
metric, zlib-compressed on the wire); :class:`BinaryCodec` is the
comparison point E7 needs — a struct-packed binary encoding that trades
readability for size.  :class:`Transmitter` wraps a codec and a fabric and
keeps the byte ledger.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Optional, Tuple

from repro.hardware.node import SimulatedNode
from repro.monitoring.records import Update
from repro.network.fabric import NetworkFabric
from repro.sim import Event

__all__ = ["TextCodec", "BinaryCodec", "Transmitter", "decode_update"]


def decode_update(codec: "TextCodec | BinaryCodec", payload: bytes, *,
                  source: str = "wire", seq: int = 0) -> Update:
    """Decode one frame back into a typed :class:`Update`.

    The wire format stays the paper's plain ``name value`` text (§5.3.3
    keeps text for platform independence); ``source``/``seq`` are
    in-process provenance re-attached at the receiving end.
    """
    hostname, t, values = codec.decode(payload)
    return Update(hostname=hostname, time=t, values=values,
                  source=source, seq=seq)


class TextCodec:
    """Human-readable lines, optionally zlib-compressed."""

    name = "text"

    def __init__(self, compress: bool = True, level: int = 6):
        self.compress = compress
        self.level = level

    def encode(self, hostname: str, t: float,
               values: Dict[str, object]) -> bytes:
        lines = [f"@ {hostname} {t:.3f}"]
        for name in sorted(values):
            lines.append(f"{name} {values[name]}")
        raw = ("\n".join(lines) + "\n").encode("utf-8")
        if self.compress:
            return zlib.compress(raw, self.level)
        return raw

    def decode(self, payload: bytes
               ) -> Tuple[str, float, Dict[str, object]]:
        if self.compress:
            payload = zlib.decompress(payload)
        lines = payload.decode("utf-8").splitlines()
        if not lines or not lines[0].startswith("@ "):
            raise ValueError("bad monitoring frame header")
        _, hostname, t_s = lines[0].split()
        values: Dict[str, object] = {}
        for line in lines[1:]:
            name, _, raw_value = line.partition(" ")
            if not name:
                continue
            values[name] = _parse_value(raw_value)
        return hostname, float(t_s), values

    def raw_size(self, hostname: str, t: float,
                 values: Dict[str, object]) -> int:
        """Uncompressed size (the E7 'text, no compression' row)."""
        lines = [f"@ {hostname} {t:.3f}"]
        for name in sorted(values):
            lines.append(f"{name} {values[name]}")
        return len(("\n".join(lines) + "\n").encode("utf-8"))

    def encode_counted(self, hostname: str, t: float,
                       values: Dict[str, object]) -> Tuple[bytes, int]:
        """``(encode(...), raw_size(...))`` formatting the text once."""
        lines = [f"@ {hostname} {t:.3f}"]
        for name in sorted(values):
            lines.append(f"{name} {values[name]}")
        raw = ("\n".join(lines) + "\n").encode("utf-8")
        if self.compress:
            return zlib.compress(raw, self.level), len(raw)
        return raw, len(raw)


def _parse_value(raw: str) -> object:
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


class BinaryCodec:
    """Struct-packed binary frames: smaller, opaque, endian-fragile.

    Two modes:

    * **schemaless** (default): each value carries a length-prefixed name —
      self-describing but the names dominate the frame.
    * **schema-based**: both ends share an ordered field list (like a
      compiled MIB); the frame carries a presence bitmap and packed values,
      no names.  This is the "binary formats require less storage" point
      of §5.3.3 — and also its downside: the schema is implicit, versioned
      out-of-band, and unreadable on the wire, which is exactly why the
      paper keeps text.
    """

    name = "binary"

    def __init__(self, schema: Optional[Tuple[str, ...]] = None):
        self.schema = tuple(schema) if schema is not None else None
        self._index = ({name: i for i, name in enumerate(self.schema)}
                       if self.schema is not None else None)

    # -- schema mode -------------------------------------------------------
    def _encode_value(self, value: object) -> bytes:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int) and -2**31 <= value < 2**31:
            return b"\x03" + struct.pack("<i", value)
        if isinstance(value, int) and -2**63 <= value < 2**63:
            return b"\x04" + struct.pack("<q", value)
        if isinstance(value, (int, float)):
            return b"\x01" + struct.pack("<d", float(value))
        value_b = str(value).encode("utf-8")
        return b"\x02" + struct.pack("<H", len(value_b)) + value_b

    def _decode_value(self, payload: bytes, pos: int):
        kind = payload[pos:pos + 1]
        pos += 1
        if kind == b"\x03":
            (v,) = struct.unpack_from("<i", payload, pos)
            return v, pos + 4
        if kind == b"\x04":
            (v,) = struct.unpack_from("<q", payload, pos)
            return v, pos + 8
        if kind == b"\x01":
            (v,) = struct.unpack_from("<d", payload, pos)
            return (int(v) if v.is_integer() else v), pos + 8
        (vlen,) = struct.unpack_from("<H", payload, pos)
        pos += 2
        return payload[pos:pos + vlen].decode("utf-8"), pos + vlen

    def _encode_schema(self, hostname: str, t: float,
                       values: Dict[str, object]) -> bytes:
        host_b = hostname.encode("utf-8")
        bitmap = bytearray((len(self.schema) + 7) // 8)
        ordered = []
        extras = {}
        for name, value in values.items():
            idx = self._index.get(name)
            if idx is None:
                extras[name] = value
                continue
            bitmap[idx // 8] |= 1 << (idx % 8)
            ordered.append((idx, value))
        ordered.sort()
        out = [b"S", struct.pack("<Bd H", len(host_b), t,
                                 len(extras)), host_b,
               bytes(bitmap)]
        for _, value in ordered:
            out.append(self._encode_value(value))
        for name in sorted(extras):
            name_b = name.encode("utf-8")
            out.append(struct.pack("<B", len(name_b)) + name_b)
            out.append(self._encode_value(extras[name]))
        return b"".join(out)

    def _decode_schema(self, payload: bytes
                       ) -> Tuple[str, float, Dict[str, object]]:
        pos = 1  # mode byte
        host_len, t, n_extras = struct.unpack_from("<Bd H", payload, pos)
        pos += struct.calcsize("<Bd H")
        hostname = payload[pos:pos + host_len].decode("utf-8")
        pos += host_len
        bitmap_len = (len(self.schema) + 7) // 8
        bitmap = payload[pos:pos + bitmap_len]
        pos += bitmap_len
        values: Dict[str, object] = {}
        for idx, name in enumerate(self.schema):
            if bitmap[idx // 8] & (1 << (idx % 8)):
                values[name], pos = self._decode_value(payload, pos)
        for _ in range(n_extras):
            name_len = payload[pos]
            pos += 1
            name = payload[pos:pos + name_len].decode("utf-8")
            pos += name_len
            values[name], pos = self._decode_value(payload, pos)
        return hostname, t, values

    # -- public API ----------------------------------------------------------
    def encode(self, hostname: str, t: float,
               values: Dict[str, object]) -> bytes:
        if self.schema is not None:
            return self._encode_schema(hostname, t, values)
        host_b = hostname.encode("utf-8")
        out = [struct.pack("<Bd H", len(host_b), t, len(values)), host_b]
        for name in sorted(values):
            name_b = name.encode("utf-8")
            out.append(struct.pack("<B", len(name_b)))
            out.append(name_b)
            value = values[name]
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                out.append(b"\x01" + struct.pack("<d", float(value)))
            else:
                value_b = str(value).encode("utf-8")
                out.append(b"\x02" + struct.pack("<H", len(value_b))
                           + value_b)
        return b"".join(out)

    def decode(self, payload: bytes
               ) -> Tuple[str, float, Dict[str, object]]:
        if self.schema is not None:
            if payload[:1] != b"S":
                raise ValueError("schema frame expected")
            return self._decode_schema(payload)
        host_len, t, count = struct.unpack_from("<Bd H", payload, 0)
        pos = struct.calcsize("<Bd H")
        hostname = payload[pos:pos + host_len].decode("utf-8")
        pos += host_len
        values: Dict[str, object] = {}
        for _ in range(count):
            name_len = payload[pos]
            pos += 1
            name = payload[pos:pos + name_len].decode("utf-8")
            pos += name_len
            kind = payload[pos:pos + 1]
            pos += 1
            if kind == b"\x01":
                (value,) = struct.unpack_from("<d", payload, pos)
                pos += 8
                values[name] = int(value) if value.is_integer() else value
            else:
                (vlen,) = struct.unpack_from("<H", payload, pos)
                pos += 2
                values[name] = payload[pos:pos + vlen].decode("utf-8")
                pos += vlen
        return hostname, t, values


class Transmitter:
    """Sends consolidated deltas to the management node over the fabric."""

    def __init__(self, fabric: Optional[NetworkFabric],
                 src: SimulatedNode, dst: Optional[SimulatedNode], *,
                 codec: Optional[TextCodec | BinaryCodec] = None):
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.codec = codec if codec is not None else TextCodec()
        self.frames_sent = 0
        self.bytes_sent = 0
        self.raw_bytes = 0

    def transmit_update(self, update: Update
                        ) -> Tuple[bytes, Optional[Event]]:
        """Typed entry point: encode and send one :class:`Update`."""
        return self.transmit(update.time, update.values)

    def transmit(self, t: float, values: Dict[str, object]
                 ) -> Tuple[bytes, Optional[Event]]:
        """Encode and (if wired to a fabric) send. Returns (payload, event)."""
        if not values:
            return b"", None
        if isinstance(self.codec, TextCodec):
            payload, raw = self.codec.encode_counted(self.src.hostname, t,
                                                     values)
            self.raw_bytes += raw
        else:
            payload = self.codec.encode(self.src.hostname, t, values)
            self.raw_bytes += len(payload)
        self.frames_sent += 1
        self.bytes_sent += len(payload)
        event = None
        if self.fabric is not None and self.dst is not None:
            event = self.fabric.message(self.src, self.dst, len(payload),
                                        tag="monitoring")
        return payload, event

    @property
    def compression_ratio(self) -> float:
        if self.bytes_sent == 0:
            return 1.0
        return self.raw_bytes / self.bytes_sent
