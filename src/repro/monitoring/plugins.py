"""Plug-in support (§5.1): "A plugin itself can be any program, script
(shell, perl, etc.) or any combination thereof — as long as it resides in
the ClusterWorX plug-in directory it will be recognized by the system
automatically."

Two plug-in shapes are recognized when a directory is scanned:

* Python files (``*.py``) defining a module-level ``MONITORS`` list of
  ``(name, callable, static)`` tuples, or a single ``monitor(context)``
  function (registered under the file's stem).
* Executable scripts (any other file with the executable bit) that print
  ``name value`` pairs to stdout; they are wrapped in a
  :class:`ScriptMonitor` and invoked with the node hostname as argv[1].

Plug-ins land in the same :class:`~repro.monitoring.monitors.MonitorRegistry`
the built-ins live in, so the consolidation/transmission/event machinery
treats them identically.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Tuple

from repro.monitoring.monitors import Monitor, MonitorContext, MonitorRegistry

__all__ = ["PluginError", "ScriptMonitor", "load_plugin_dir",
           "register_function"]


class PluginError(Exception):
    """A plug-in failed to load or produced bad output."""


class ScriptMonitor:
    """Wraps an executable plug-in; each evaluation runs the script."""

    def __init__(self, path: Path, timeout: float = 5.0):
        self.path = Path(path)
        self.timeout = timeout

    def __call__(self, ctx: MonitorContext) -> Dict[str, float]:
        try:
            proc = subprocess.run(
                [str(self.path), ctx.node.hostname],
                capture_output=True, text=True, timeout=self.timeout)
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise PluginError(f"plugin {self.path.name} failed: {exc}")
        if proc.returncode != 0:
            raise PluginError(
                f"plugin {self.path.name} exited {proc.returncode}: "
                f"{proc.stderr.strip()}")
        values: Dict[str, float] = {}
        for line in proc.stdout.splitlines():
            fields = line.split()
            if len(fields) != 2:
                continue
            try:
                values[fields[0]] = float(fields[1])
            except ValueError:
                values[fields[0]] = fields[1]  # type: ignore[assignment]
        if not values:
            raise PluginError(
                f"plugin {self.path.name} produced no 'name value' lines")
        return values


def register_function(registry: MonitorRegistry, name: str, fn, *,
                      static: bool = False, units: str = "") -> None:
    """Programmatic plug-in registration (the Python-API path)."""
    registry.add(Monitor(name=name, fn=fn, static=static, units=units,
                         source="plugin"))


def _load_python_plugin(registry: MonitorRegistry, path: Path) -> List[str]:
    spec = importlib.util.spec_from_file_location(
        f"cwx_plugin_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise PluginError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise PluginError(f"plugin {path.name} raised on import: {exc}")
    registered: List[str] = []
    monitors = getattr(module, "MONITORS", None)
    if monitors is not None:
        for entry in monitors:
            name, fn = entry[0], entry[1]
            static = bool(entry[2]) if len(entry) > 2 else False
            register_function(registry, name, fn, static=static)
            registered.append(name)
        return registered
    fn = getattr(module, "monitor", None)
    if callable(fn):
        register_function(registry, path.stem, fn)
        return [path.stem]
    raise PluginError(
        f"plugin {path.name} defines neither MONITORS nor monitor()")


def load_plugin_dir(registry: MonitorRegistry,
                    directory: str | Path) -> List[str]:
    """Scan ``directory`` and register everything recognizable.

    Returns the names of the monitors registered.  Unrecognized files are
    skipped silently (the directory may hold plugin data files); files that
    *look* like plug-ins but fail to load raise :class:`PluginError`.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise PluginError(f"no such plugin directory: {directory}")
    registered: List[str] = []
    for path in sorted(directory.iterdir()):
        if path.name.startswith(".") or path.is_dir():
            continue
        if path.suffix == ".py":
            registered.extend(_load_python_plugin(registry, path))
        elif os.access(path, os.X_OK):
            script = ScriptMonitor(path)
            register_function(registry, path.stem, script)
            registered.append(path.stem)
    return registered
