"""Stage 1 of the monitoring pipeline: gathering (§5.3.1).

The paper walks /proc/meminfo through four implementation generations:

====  ===========================================  ==============  =======
rung  implementation                               paper samples/s  gain
====  ===========================================  ==============  =======
1     line-by-line reads + regex per line                      85       —
2     single buffered read, generic parsing                  4173  +4800 %
3     a-priori knowledge of the output format               14031   +236 %
4     keep the file open, rewind instead of reopen          33855   +141 %
====  ===========================================  ==============  =======

All four are implemented here against :class:`repro.procfs.ProcFilesystem`.
Rung 1's cost explosion is structural: every ``readline`` regenerates the
whole proc file, exactly as the kernel does.  Rung 2 pays one regeneration
but parses generically; rung 3 exploits the fixed line order and extracts
only the fields it needs; rung 4 additionally hoists the open/close out of
the sampling loop, keeping the handle and rewinding.

The same generic/a-priori parser pairs exist for /proc/stat, /proc/loadavg,
/proc/uptime and /proc/net/dev so E2's per-file cost table can be measured
with the rung-4 gatherer, and :class:`BytesApriori` provides the
"C implementation" analogue for E3 (the paper found C "only slightly ahead"
of Java; we compare a bytes-level parser against the str-level one).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.procfs.filesystem import ProcFile, ProcFilesystem

__all__ = [
    "GATHER_PATHS",
    "Gatherer",
    "NaiveGatherer",
    "BufferedGatherer",
    "AprioriGatherer",
    "PersistentGatherer",
    "BytesPersistentGatherer",
    "make_gatherer",
    "parse_generic",
    "parse_apriori",
]

#: The proc files the standard agent samples, in the paper's order.
GATHER_PATHS = ("/proc/meminfo", "/proc/stat", "/proc/loadavg",
                "/proc/uptime", "/proc/net/dev")

# ---------------------------------------------------------------------------
# Generic parsers (rung 2): no assumptions beyond "lines of key/value text".
# ---------------------------------------------------------------------------

_MEMINFO_RE = re.compile(r"^(\w+):\s+(\d+)(?:\s+kB)?\s*$")


_GENERIC_KV_RE = re.compile(r"(\w+):\s+(\d+)(\s+kB)?\s*$")
_GENERIC_ROW_RE = re.compile(r"(\w+):((?:\s+\d+)+)\s*$")


def _generic_meminfo(text: str) -> Dict[str, int]:
    # Generic means *no* format knowledge: pattern-match every line against
    # "key: value [kB]" then "key: v1 v2 ..." and build the full dict,
    # normalizing kB suffixes.  This is the natural first-cut parser and is
    # what rung 3's a-priori knowledge replaces.
    values: Dict[str, int] = {}
    for line in text.splitlines():
        m = _GENERIC_KV_RE.match(line)
        if m:
            value = int(m.group(2))
            if m.group(3):
                value *= 1024
            values[m.group(1)] = value
            continue
        m = _GENERIC_ROW_RE.match(line)
        if m:
            fields = m.group(2).split()
            if len(fields) > 1:
                for i, f in enumerate(fields):
                    values[f"{m.group(1)}_{i}"] = int(f)
    return values


def _generic_stat(text: str) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for line in text.splitlines():
        fields = line.split()
        if not fields:
            continue
        key = fields[0]
        if key == "cpu":
            values["cpu_user"] = int(fields[1])
            values["cpu_nice"] = int(fields[2])
            values["cpu_system"] = int(fields[3])
            values["cpu_idle"] = int(fields[4])
        elif key in ("ctxt", "btime", "processes",
                     "procs_running", "procs_blocked"):
            values[key] = int(fields[1])
        elif key == "intr":
            values["intr"] = int(fields[1])
    return values


def _generic_loadavg(text: str) -> Dict[str, float]:
    fields = text.split()
    running, _, total = fields[3].partition("/")
    return {
        "load1": float(fields[0]),
        "load5": float(fields[1]),
        "load15": float(fields[2]),
        "procs_running": int(running),
        "procs_total": int(total),
        "last_pid": int(fields[4]),
    }


def _generic_uptime(text: str) -> Dict[str, float]:
    fields = text.split()
    return {"uptime": float(fields[0]), "idle": float(fields[1])}


def _generic_net_dev(text: str) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for line in text.splitlines()[2:]:
        name, _, rest = line.partition(":")
        fields = rest.split()
        if len(fields) < 16:
            continue
        iface = name.strip()
        values[f"{iface}_rx_bytes"] = int(fields[0])
        values[f"{iface}_rx_packets"] = int(fields[1])
        values[f"{iface}_rx_errs"] = int(fields[2])
        values[f"{iface}_tx_bytes"] = int(fields[8])
        values[f"{iface}_tx_packets"] = int(fields[9])
    return values


# ---------------------------------------------------------------------------
# A-priori parsers (rung 3): fixed line order, only the needed fields.
# ---------------------------------------------------------------------------

def _apriori_meminfo(text: str) -> Dict[str, int]:
    # Line layout is fixed (see repro.procfs.handlers.gen_meminfo):
    # line 1 is "Mem: total used free shared buffers cached",
    # line 2 is "Swap: total used free".  One split each, no key matching.
    nl1 = text.find("\n")
    nl2 = text.find("\n", nl1 + 1)
    nl3 = text.find("\n", nl2 + 1)
    mem = text[nl1 + 5:nl2].split()
    swap = text[nl2 + 6:nl3].split()
    return {
        "MemTotal": int(mem[0]),
        "MemUsed": int(mem[1]),
        "MemFree": int(mem[2]),
        "Buffers": int(mem[4]),
        "Cached": int(mem[5]),
        "SwapTotal": int(swap[0]),
        "SwapUsed": int(swap[1]),
        "SwapFree": int(swap[2]),
    }


def _apriori_stat(text: str) -> Dict[str, int]:
    # First line is the aggregate cpu line; nothing else is needed for the
    # CPU monitors, so parsing stops at the first newline.
    end = text.find("\n")
    fields = text[5:end].split()
    return {
        "cpu_user": int(fields[0]),
        "cpu_nice": int(fields[1]),
        "cpu_system": int(fields[2]),
        "cpu_idle": int(fields[3]),
    }


def _apriori_loadavg(text: str) -> Dict[str, float]:
    # "L1 L5 L15 r/t pid" — fixed five fields.
    a = text.find(" ")
    b = text.find(" ", a + 1)
    c = text.find(" ", b + 1)
    return {
        "load1": float(text[:a]),
        "load5": float(text[a + 1:b]),
        "load15": float(text[b + 1:c]),
    }


def _apriori_uptime(text: str) -> Dict[str, float]:
    sep = text.find(" ")
    return {"uptime": float(text[:sep]),
            "idle": float(text[sep + 1:-1])}


def _apriori_net_dev(text: str) -> Dict[str, int]:
    # Two fixed header lines, then "iface: rx ... tx ..." rows; loopback
    # first.  Only eth* byte counters are extracted.
    values: Dict[str, int] = {}
    pos = text.find("\n")
    pos = text.find("\n", pos + 1)  # end of second header line
    pos = text.find("\n", pos + 1)  # skip the lo row
    while pos != -1 and pos + 1 < len(text):
        end = text.find("\n", pos + 1)
        if end == -1:
            break
        line = text[pos + 1:end]
        colon = line.find(":")
        fields = line[colon + 1:].split()
        iface = line[:colon].strip()
        values[f"{iface}_rx_bytes"] = int(fields[0])
        values[f"{iface}_tx_bytes"] = int(fields[8])
        pos = end
    return values


#: path -> (generic parser, a-priori parser)
_PARSERS: Dict[str, tuple[Callable, Callable]] = {
    "/proc/meminfo": (_generic_meminfo, _apriori_meminfo),
    "/proc/stat": (_generic_stat, _apriori_stat),
    "/proc/loadavg": (_generic_loadavg, _apriori_loadavg),
    "/proc/uptime": (_generic_uptime, _apriori_uptime),
    "/proc/net/dev": (_generic_net_dev, _apriori_net_dev),
}


def parse_generic(path: str, text: str) -> Dict:
    """Parse ``text`` from ``path`` with the generic (rung 2) parser."""
    return _PARSERS[path][0](text)


def parse_apriori(path: str, text: str) -> Dict:
    """Parse ``text`` from ``path`` with the a-priori (rung 3+) parser."""
    return _PARSERS[path][1](text)


# ---------------------------------------------------------------------------
# Gatherers
# ---------------------------------------------------------------------------

class Gatherer:
    """Base: one gatherer samples one proc file into a value dict."""

    #: rung number in the paper's ladder (for reporting).
    RUNG = 0

    def __init__(self, fs: ProcFilesystem, path: str = "/proc/meminfo"):
        if path not in _PARSERS:
            raise ValueError(f"no parser registered for {path}")
        self.fs = fs
        self.path = path
        self.samples_taken = 0

    def sample(self) -> Dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        pass


class NaiveGatherer(Gatherer):
    """Rung 1: reopen every sample, unbuffered character reads, regex parse.

    Models the classic stdio-free ``fgetc``-style loop: every one-character
    ``read`` makes the kernel regenerate the *entire* proc file.  At ~700
    characters of /proc/meminfo that is ~700 regenerations per sample — the
    structural reason the paper's first implementation managed only 85
    samples/s at 100 % CPU (11.7 ms/sample on its 1 GHz testbed).
    """

    RUNG = 1

    def sample(self) -> Dict:
        f = self.fs.open(self.path)
        values: Dict[str, int] = {}
        try:
            chars: List[str] = []
            while True:
                ch = f.read(1)
                if not ch:
                    break
                if ch == "\n":
                    line = "".join(chars)
                    chars.clear()
                    m = _MEMINFO_RE.match(line)
                    if m:
                        values[m.group(1)] = int(m.group(2))
                    else:
                        fields = line.split()
                        if len(fields) >= 2 and fields[0].endswith(":"):
                            try:
                                values[fields[0][:-1]] = int(fields[1])
                            except ValueError:
                                pass
                else:
                    chars.append(ch)
        finally:
            f.close()
        self.samples_taken += 1
        return values


class BufferedGatherer(Gatherer):
    """Rung 2: one buffered read per sample, generic parsing."""

    RUNG = 2

    def sample(self) -> Dict:
        f = self.fs.open(self.path)
        try:
            text = f.read()
        finally:
            f.close()
        self.samples_taken += 1
        return parse_generic(self.path, text)


class AprioriGatherer(Gatherer):
    """Rung 3: one read + a-priori format knowledge (still reopens)."""

    RUNG = 3

    def sample(self) -> Dict:
        f = self.fs.open(self.path)
        try:
            text = f.read()
        finally:
            f.close()
        self.samples_taken += 1
        return parse_apriori(self.path, text)


class PersistentGatherer(Gatherer):
    """Rung 4: keep the file open; rewind with ``seek(0)`` between samples."""

    RUNG = 4

    def __init__(self, fs: ProcFilesystem, path: str = "/proc/meminfo"):
        super().__init__(fs, path)
        self._file: ProcFile = fs.open(path)

    def sample(self) -> Dict:
        self._file.seek(0)
        text = self._file.read()
        self.samples_taken += 1
        return parse_apriori(self.path, text)

    def close(self) -> None:
        self._file.close()


class BytesPersistentGatherer(PersistentGatherer):
    """Rung 4, bytes-level parsing — the E3 "C implementation" analogue.

    Works on the encoded buffer with manual index arithmetic instead of str
    methods.  The paper found its C gatherer "only slightly ahead" of the
    Java one; this pair reproduces that comparison shape.
    """

    def sample(self) -> Dict:
        self._file.seek(0)
        raw = self._file.read().encode("ascii")
        self.samples_taken += 1
        if self.path == "/proc/meminfo":
            nl1 = raw.index(b"\n")
            nl2 = raw.index(b"\n", nl1 + 1)
            nl3 = raw.index(b"\n", nl2 + 1)
            mem = raw[nl1 + 5:nl2].split()
            swap = raw[nl2 + 6:nl3].split()
            return {
                "MemTotal": int(mem[0]),
                "MemUsed": int(mem[1]),
                "MemFree": int(mem[2]),
                "Buffers": int(mem[4]),
                "Cached": int(mem[5]),
                "SwapTotal": int(swap[0]),
                "SwapUsed": int(swap[1]),
                "SwapFree": int(swap[2]),
            }
        return parse_apriori(self.path, raw.decode("ascii"))


_STRATEGIES = {
    "naive": NaiveGatherer,
    "buffered": BufferedGatherer,
    "apriori": AprioriGatherer,
    "persistent": PersistentGatherer,
    "bytes": BytesPersistentGatherer,
}


def make_gatherer(strategy: str, fs: ProcFilesystem,
                  path: str = "/proc/meminfo") -> Gatherer:
    """Factory over the ladder: naive|buffered|apriori|persistent|bytes."""
    cls = _STRATEGIES.get(strategy)
    if cls is None:
        raise ValueError(
            f"unknown strategy {strategy!r}; "
            f"choose from {sorted(_STRATEGIES)}")
    return cls(fs, path)
