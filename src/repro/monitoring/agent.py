"""The per-node monitoring agent: gather → consolidate → transmit (§5.3).

One :class:`NodeAgent` runs on each node as a simulation process.  Every
``interval`` seconds it evaluates the monitor registry, feeds the result
through its :class:`~repro.monitoring.consolidation.Consolidator`, and
transmits the surviving delta to the management node (and/or hands it to a
direct server callback — the in-process fast path the ClusterWorX server
uses).

The agent also *charges itself* to the node: the measured per-sample CPU
cost (E1/E2 territory — ~110 us across the standard proc files at rung 4)
is registered as CPU overhead, so the monitoring system observes its own
footprint.  At the paper's example rate of 50 samples/s that works out to
the quoted "approximately 5 seconds of CPU time per hour".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.hardware.node import SimulatedNode
from repro.monitoring.consolidation import Consolidator
from repro.monitoring.gathering import GATHER_PATHS, make_gatherer
from repro.monitoring.monitors import MonitorContext, MonitorRegistry
from repro.monitoring.records import Update
from repro.monitoring.transmission import Transmitter
from repro.network.fabric import NetworkFabric
from repro.procfs import ProcFilesystem
from repro.sim import SimKernel

__all__ = ["NodeAgent", "PER_SAMPLE_CPU_SECONDS"]

#: CPU seconds per full sample at gathering rung 4 (sum of the per-file
#: costs measured in E2, plus sensor reads).
PER_SAMPLE_CPU_SECONDS = 110e-6


class NodeAgent:
    """The on-node half of the monitoring system."""

    def __init__(self, kernel: SimKernel, node: SimulatedNode,
                 registry: MonitorRegistry, *,
                 interval: float = 5.0,
                 deadband: float = 0.0,
                 fabric: Optional[NetworkFabric] = None,
                 server_node: Optional[SimulatedNode] = None,
                 on_update: Optional[Callable[[str, float, Dict], None]]
                 = None,
                 on_sample: Optional[Callable[[Update], None]] = None,
                 codec=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.kernel = kernel
        self.node = node
        self.registry = registry
        self.interval = interval
        self.consolidator = Consolidator(
            static_names=registry.static_names(), deadband=deadband)
        self.transmitter = Transmitter(fabric, node, server_node,
                                       codec=codec)
        #: legacy raw-delta callback ``(hostname, t, values)``.
        self.on_update = on_update
        #: typed callback: receives the same :class:`Update` the
        #: transmitter ships (the server's ``ingest`` plugs in here).
        self.on_sample = on_sample
        self._seq = 0
        self.procfs = ProcFilesystem(node)
        #: (time, monitor name, error text) for failed monitor evaluations.
        self.errors: List[Tuple[float, str, str]] = []
        self.samples_taken = 0
        self._process = None
        self._running = False

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the agent is active (self-driven or scheduler-driven)."""
        return self._running

    def start(self) -> None:
        """Activate with a dedicated driver process (the legacy path)."""
        if self._running:
            return
        self.scheduled_start()
        self._process = self.kernel.process(
            self._loop(), name=f"agent:{self.node.hostname}")

    def scheduled_start(self) -> None:
        """Activate without a process — an
        :class:`~repro.monitoring.scheduler.AgentScheduler` will call
        :meth:`tick` instead."""
        if self._running:
            return
        self._running = True
        self.node.cpu.set_overhead(
            "monitoring", PER_SAMPLE_CPU_SECONDS / self.interval)

    def stop(self) -> None:
        self._running = False
        self.node.cpu.set_overhead("monitoring", 0.0)

    def tick(self) -> None:
        """One scheduled sample (skipped while the node is down or hung)."""
        if self.node.is_running() and self.node.state.value != "hung":
            self.sample_once()

    def _loop(self):
        while self._running:
            self.tick()
            yield self.kernel.timeout(self.interval)

    # -- one sample ---------------------------------------------------------
    def evaluate(self) -> Dict[str, object]:
        """Evaluate every registered monitor; plugin failures are recorded
        and skipped rather than killing the sample."""
        ctx = MonitorContext(node=self.node, t=self.kernel.now)
        fast = self.registry.fast_sampler
        if fast is not None:
            # Value-identical hoisted sampler for the unmodified builtin
            # set (plugin registration clears it).  Any failure falls
            # back to the generic loop, which records the culprit.
            try:
                return fast(ctx)
            except Exception:  # worx: ok WORX106
                # Nothing is lost: the generic loop below re-evaluates
                # every monitor and records the failing one in errors.
                pass
        values: Dict[str, object] = {}
        for monitor in self.registry.monitors():
            try:
                result = monitor.evaluate(ctx)
            except Exception as exc:  # plugin code is arbitrary
                self.errors.append((self.kernel.now, monitor.name,
                                    str(exc)))
                continue
            if isinstance(result, dict):
                values.update(result)  # script plugins emit several values
            else:
                values[monitor.name] = result
        return values

    def sample_once(self) -> Dict[str, object]:
        """Gather, consolidate, transmit. Returns the transmitted delta."""
        now = self.kernel.now
        values = self.evaluate()
        delta = self.consolidator.update(values, now)
        self.samples_taken += 1
        if delta:
            self._seq += 1
            update = Update(hostname=self.node.hostname, time=now,
                            values=delta, source="agent",
                            seq=self._seq)
            self.transmitter.transmit_update(update)
            if self.on_sample is not None:
                self.on_sample(update)
            if self.on_update is not None:
                self.on_update(self.node.hostname, now, delta)
        return delta

    # -- validation path -----------------------------------------------------
    def gather_proc(self) -> Dict[str, Dict]:
        """Gather every standard proc file through the real (rung 4)
        gathering code.  Used by tests to prove the text path agrees with
        the direct model reads the fast path uses."""
        out: Dict[str, Dict] = {}
        for path in GATHER_PATHS:
            gatherer = make_gatherer("persistent", self.procfs, path)
            try:
                out[path] = gatherer.sample()
            finally:
                gatherer.close()
        return out
