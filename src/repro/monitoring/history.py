"""Historical graphing storage (§5.1).

"Historical graphing allows the administrator to chart monitoring values
over time ... view cluster use and performance trends over a selected time
interval, analyze the relationships between monitored values, or compare
performance between nodes."

:class:`HistoryStore` keeps one numpy-backed ring per (node, metric) and
provides windowed queries, RRD-style downsampling for chart rendering,
cross-node comparison, and a correlation helper for the "relationships
between monitored values" use case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.ringbuffer import TimeSeriesRing

__all__ = ["HistoryStore", "TieredHistory"]


class HistoryStore:
    """Time-series history for every (node, metric) pair."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._series: Dict[Tuple[str, str], TimeSeriesRing] = {}

    def record(self, hostname: str, t: float,
               values: Dict[str, object]) -> None:
        """Store the numeric subset of one update."""
        for name, value in values.items():
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, (int, float)):
                continue
            key = (hostname, name)
            ring = self._series.get(key)
            if ring is None:
                ring = TimeSeriesRing(self.capacity)
                self._series[key] = ring
            ring.append(t, float(value))

    def ingest(self, update) -> None:
        """Typed entry point: store one
        :class:`~repro.core.statestore.Update` — the store-subscription
        form of :meth:`record`."""
        self.record(update.hostname, update.time, update.values)

    def forget(self, hostname: str) -> None:
        """Drop every series for a decommissioned node."""
        for key in [k for k in self._series if k[0] == hostname]:
            del self._series[key]

    # -- queries ------------------------------------------------------------
    def series(self, hostname: str, metric: str
               ) -> Tuple[np.ndarray, np.ndarray]:
        ring = self._series.get((hostname, metric))
        if ring is None:
            return np.empty(0), np.empty(0)
        return ring.arrays()

    def window(self, hostname: str, metric: str, t0: float, t1: float
               ) -> Tuple[np.ndarray, np.ndarray]:
        ring = self._series.get((hostname, metric))
        if ring is None:
            return np.empty(0), np.empty(0)
        return ring.window(t0, t1)

    def latest(self, hostname: str, metric: str
               ) -> Optional[Tuple[float, float]]:
        ring = self._series.get((hostname, metric))
        return ring.latest() if ring is not None else None

    def graph(self, hostname: str, metric: str, buckets: int = 60
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Downsampled (centers, mean, min, max) for chart rendering."""
        ring = self._series.get((hostname, metric))
        if ring is None:
            empty = np.empty(0)
            return empty, empty, empty, empty
        return ring.downsample(buckets)

    def compare_nodes(self, hostnames: Sequence[str], metric: str
                      ) -> Dict[str, float]:
        """Mean of ``metric`` per node over its stored history."""
        result: Dict[str, float] = {}
        for hostname in hostnames:
            _, v = self.series(hostname, metric)
            if len(v):
                result[hostname] = float(np.mean(v))
        return result

    def correlate(self, hostname: str, metric_a: str, metric_b: str
                  ) -> float:
        """Pearson correlation between two metrics on one node.

        Series are resampled onto the union time grid by nearest-previous
        interpolation before correlating.  Returns NaN when either series
        is too short or constant.
        """
        ta, va = self.series(hostname, metric_a)
        tb, vb = self.series(hostname, metric_b)
        if len(ta) < 3 or len(tb) < 3:
            return float("nan")
        grid = np.union1d(ta, tb)
        ia = np.clip(np.searchsorted(ta, grid, side="right") - 1, 0,
                     len(ta) - 1)
        ib = np.clip(np.searchsorted(tb, grid, side="right") - 1, 0,
                     len(tb) - 1)
        a, b = va[ia], vb[ib]
        if np.std(a) == 0 or np.std(b) == 0:
            return float("nan")
        return float(np.corrcoef(a, b)[0, 1])

    def trend(self, hostname: str, metric: str, *,
              window: Optional[float] = None
              ) -> Tuple[float, float]:
        """Least-squares linear trend ``(slope per second, intercept)``.

        ``window`` restricts the fit to the trailing seconds of history.
        Returns (nan, nan) when there is not enough data.
        """
        t, v = self.series(hostname, metric)
        if window is not None and len(t):
            mask = t >= t[-1] - window
            t, v = t[mask], v[mask]
        if len(t) < 2 or t[-1] == t[0]:
            return float("nan"), float("nan")
        slope, intercept = np.polyfit(t, v, 1)
        return float(slope), float(intercept)

    def forecast(self, hostname: str, metric: str, at: float, *,
                 window: Optional[float] = None) -> float:
        """Extrapolated value of ``metric`` at future time ``at``.

        The §5.1 use case: "predict future computing needs" — e.g. when a
        leaking node exhausts memory or a filesystem fills.
        """
        slope, intercept = self.trend(hostname, metric, window=window)
        return slope * at + intercept

    def time_to_threshold(self, hostname: str, metric: str,
                          threshold: float, *,
                          window: Optional[float] = None
                          ) -> Optional[float]:
        """Predicted absolute time the trend crosses ``threshold``.

        None when the trend never reaches it (wrong direction or flat).
        """
        slope, intercept = self.trend(hostname, metric, window=window)
        if not np.isfinite(slope):
            return None
        # Treat numerically-flat trends as flat: a slope that would take
        # longer than 1000x the observed history to cross is noise.
        t, v = self.series(hostname, metric)
        span = float(t[-1] - t[0]) if len(t) >= 2 else 0.0
        scale = float(np.max(np.abs(v))) if len(v) else 1.0
        if span > 0 and abs(slope) * span * 1000.0 < max(
                abs(threshold - intercept), 1e-12 * max(scale, 1.0)):
            return None
        if slope == 0.0:
            return None
        crossing = (threshold - intercept) / slope
        latest = self.latest(hostname, metric)
        if latest is None or crossing <= latest[0]:
            current = latest[1] if latest else None
            if current is not None:
                # Already past it in the trend direction?
                if (slope > 0 and current >= threshold) or \
                        (slope < 0 and current <= threshold):
                    return latest[0]
            return None
        return float(crossing)

    # -- migration --------------------------------------------------------
    def export_host(self, hostname: str
                    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Every stored series for one host, as ``{metric: (t, v)}``.

        The shard-rebalance path: a drained shard exports a node's
        history so the adopting shard keeps the trend lines intact.
        """
        out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for (host, metric) in self._series:
            if host == hostname:
                out[metric] = self.series(host, metric)
        return out

    def adopt_host(self, hostname: str,
                   series: Dict[str, Tuple[np.ndarray, np.ndarray]]
                   ) -> None:
        """Replay an :meth:`export_host` payload into this store."""
        for metric in sorted(series):
            t, v = series[metric]
            for ti, vi in zip(t, v):
                self.record(hostname, float(ti), {metric: float(vi)})

    # -- persistence ------------------------------------------------------
    def export_text(self) -> str:
        """Serialize every series as ``host metric t value`` lines.

        The monitoring philosophy of §5.3.3 applied to storage: text,
        human-readable, platform-independent — compress it at rest if you
        care about bytes.
        """
        lines = []
        for (host, metric) in sorted(self._series):
            t, v = self.series(host, metric)
            for ti, vi in zip(t, v):
                lines.append(f"{host} {metric} "
                             f"{float(ti)!r} {float(vi)!r}")
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def import_text(cls, text: str, capacity: int = 4096) -> "HistoryStore":
        """Rebuild a store from :meth:`export_text` output."""
        store = cls(capacity=capacity)
        for line_no, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            fields = line.split()
            if len(fields) != 4:
                raise ValueError(f"bad history line {line_no}: {line!r}")
            host, metric, t_s, v_s = fields
            try:
                store.record(host, float(t_s), {metric: float(v_s)})
            except ValueError:
                raise ValueError(
                    f"bad history line {line_no}: {line!r}") from None
        return store

    # -- bookkeeping ----------------------------------------------------------
    @property
    def metric_names(self) -> List[str]:
        return sorted({metric for _, metric in self._series})

    @property
    def hostnames(self) -> List[str]:
        return sorted({host for host, _ in self._series})

    def __len__(self) -> int:
        return len(self._series)


class TieredHistory:
    """RRD-style multi-resolution archive for one metric stream.

    The raw ring holds recent samples at full resolution; each coarser
    tier stores fixed-width bin aggregates (mean/min/max) covering a
    longer horizon in the same memory.  This is how a 2002-era monitoring
    server kept "performance trends over a selected time interval"
    without unbounded storage: recent data sharp, old data summarized.
    """

    def __init__(self, *, raw_capacity: int = 512,
                 tier_widths: Sequence[float] = (60.0, 3600.0),
                 tier_capacity: int = 512):
        widths = list(tier_widths)
        if sorted(widths) != widths or len(set(widths)) != len(widths):
            raise ValueError("tier widths must be strictly increasing")
        self.raw = TimeSeriesRing(raw_capacity)
        self.tier_widths = widths
        #: per tier: ring of (bin start time, mean) plus min/max rings.
        self._tiers = [
            {"mean": TimeSeriesRing(tier_capacity),
             "min": TimeSeriesRing(tier_capacity),
             "max": TimeSeriesRing(tier_capacity)}
            for _ in widths]
        # open bin accumulators per tier: [start, count, total, lo, hi]
        self._open = [None] * len(widths)

    def append(self, t: float, value: float) -> None:
        self.raw.append(t, value)
        for idx, width in enumerate(self.tier_widths):
            bin_start = (t // width) * width
            acc = self._open[idx]
            if acc is None or acc[0] != bin_start:
                if acc is not None:
                    self._flush(idx, acc)
                acc = [bin_start, 0, 0.0, value, value]
                self._open[idx] = acc
            acc[1] += 1
            acc[2] += value
            acc[3] = min(acc[3], value)
            acc[4] = max(acc[4], value)

    def _flush(self, idx: int, acc) -> None:
        start, count, total, lo, hi = acc
        tier = self._tiers[idx]
        tier["mean"].append(start, total / count)
        tier["min"].append(start, lo)
        tier["max"].append(start, hi)

    def flush(self) -> None:
        """Close all open bins (call before reading tiers at a boundary)."""
        for idx, acc in enumerate(self._open):
            if acc is not None:
                self._flush(idx, acc)
                self._open[idx] = None

    def tier(self, idx: int) -> dict:
        """Closed-bin arrays for tier ``idx``: keys mean/min/max."""
        tier = self._tiers[idx]
        return {key: ring.arrays() for key, ring in tier.items()}

    def best_series(self, t0: float, t1: float
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """The finest series that still covers ``[t0, t1]``.

        Falls back through coarser tiers as the raw ring's horizon is
        exceeded — exactly the RRD read path.
        """
        t, v = self.raw.window(t0, t1)
        raw_t, _ = self.raw.arrays()
        if len(raw_t) and raw_t[0] <= t0:
            return t, v
        for idx in range(len(self.tier_widths)):
            mt, mv = self.tier(idx)["mean"]
            if len(mt) and mt[0] <= t0:
                mask = (mt >= t0) & (mt <= t1)
                return mt[mask], mv[mask]
        # Nothing covers the start: return the coarsest we have.
        if self.tier_widths:
            mt, mv = self.tier(len(self.tier_widths) - 1)["mean"]
            mask = (mt >= t0) & (mt <= t1)
            return mt[mask], mv[mask]
        return t, v
