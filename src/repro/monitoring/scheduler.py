"""Shared agent scheduler: one kernel process drives a whole cohort.

On the legacy path every :class:`~repro.monitoring.agent.NodeAgent` owns
a generator process, so each sample costs a scheduler entry plus a full
generator resume; at 10k nodes on a 5 s interval that is 2000 resumes
per simulated second of pure bookkeeping.  The scheduler collapses a
cohort into one process per (interval, sub-bucket): each tick it calls
``agent.tick()`` synchronously over the bucket in registration order —
the exact order the per-process path produces, since agent bootstraps
fire in registration order and periodic timeouts preserve that FIFO
order forever — then arms a single shared timeout.

Phase staggering (``stagger=B > 1``) splits a cohort into B sub-buckets
offset by ``interval/B`` each, spreading server fan-in across the
interval.  That intentionally *changes* sample times, so it is opt-in;
the default (``stagger=1``) reproduces the legacy schedule byte for
byte.

Agents registered after their bucket started ticking would join
mid-phase; the facade instead gives hot-added agents their own legacy
process (their first sample must land at the add instant, which in
general shares no phase with any existing bucket).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.monitoring.agent import NodeAgent
from repro.sim import SimKernel

__all__ = ["AgentScheduler"]


class _Bucket:
    __slots__ = ("interval", "agents", "alive")

    def __init__(self, interval: float):
        self.interval = interval
        self.agents: List[NodeAgent] = []
        self.alive = True


class AgentScheduler:
    """Drives registered agents from one process per (interval, phase)."""

    def __init__(self, kernel: SimKernel, *, stagger: int = 1):
        if stagger < 1:
            raise ValueError("stagger must be >= 1")
        self.kernel = kernel
        self.stagger = int(stagger)
        self._buckets: Dict[Tuple[float, int], _Bucket] = {}
        self._registered = 0

    @property
    def agent_count(self) -> int:
        return sum(len(b.agents) for b in self._buckets.values()
                   if b.alive)

    @property
    def bucket_count(self) -> int:
        return sum(1 for b in self._buckets.values() if b.alive)

    def register(self, agent: NodeAgent) -> None:
        """Adopt an agent: activate it and drive its sampling.

        The agent's first sample lands on its bucket's next tick — for a
        fresh bucket, immediately (matching ``NodeAgent.start()``).
        """
        agent.scheduled_start()
        sub = self._registered % self.stagger
        self._registered += 1
        key = (agent.interval, sub)
        bucket = self._buckets.get(key)
        if bucket is None or not bucket.alive:
            bucket = _Bucket(agent.interval)
            self._buckets[key] = bucket
            phase = (agent.interval * sub) / self.stagger
            self.kernel.process(
                self._drive(bucket, phase),
                name=f"agent-sched:{agent.interval:g}+{sub}")
        bucket.agents.append(agent)

    def _drive(self, bucket: _Bucket, phase: float):
        if phase > 0.0:
            yield self.kernel.timeout(phase)
        while True:
            agents = bucket.agents
            prune = False
            for agent in agents:
                if agent.running:
                    agent.tick()
                else:
                    prune = True
            if prune:
                bucket.agents = [a for a in agents if a.running]
                if not bucket.agents:
                    bucket.alive = False
                    return
            yield self.kernel.timeout(bucket.interval)
