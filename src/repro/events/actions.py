"""Event actions (§5.2): "Default actions include node power down and node
reboot" — plus halt, and administrator plug-ins ("shell scripts, perl
scripts, symbolic links, programs, and more").

Power actions go through the ICE Box that feeds the node (resolved by a
caller-supplied resolver), because a crashed or overheating node cannot be
asked nicely — which is the whole point of the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hardware.node import SimulatedNode
from repro.icebox.box import IceBox

__all__ = ["ActionDispatcher", "ActionRecord"]

#: resolver: node -> (icebox, port) or None when unmanaged.
Resolver = Callable[[SimulatedNode], Optional[Tuple[IceBox, int]]]


@dataclass
class ActionRecord:
    time: float
    node: str
    action: str
    ok: bool
    detail: str = ""


class ActionDispatcher:
    """Executes named actions against nodes."""

    def __init__(self, resolver: Optional[Resolver] = None):
        self.resolver = resolver
        self.records: List[ActionRecord] = []
        self._custom: Dict[str, Callable[[SimulatedNode], object]] = {}

    # -- plug-in actions -----------------------------------------------------
    def register(self, name: str,
                 fn: Callable[[SimulatedNode], object]) -> None:
        if name in ("power_down", "reboot", "halt", "none"):
            raise ValueError(f"cannot shadow builtin action {name!r}")
        self._custom[name] = fn

    @property
    def action_names(self) -> List[str]:
        return sorted(["power_down", "reboot", "halt", "none"]
                      + list(self._custom))

    # -- execution -------------------------------------------------------------
    def execute(self, name: str, node: SimulatedNode, t: float
                ) -> ActionRecord:
        ok, detail = True, ""
        try:
            if name == "none":
                pass
            elif name == "power_down":
                ok, detail = self._power_down(node)
            elif name == "reboot":
                ok, detail = self._reboot(node)
            elif name == "halt":
                node.halt()
                detail = "halted"
            elif name in self._custom:
                result = self._custom[name](node)
                detail = f"custom: {result!r}"
            else:
                ok, detail = False, f"unknown action {name!r}"
        except Exception as exc:
            ok, detail = False, f"action raised: {exc}"
        record = ActionRecord(time=t, node=node.hostname, action=name,
                              ok=ok, detail=detail)
        self.records.append(record)
        return record

    def _locate(self, node: SimulatedNode
                ) -> Optional[Tuple[IceBox, int]]:
        if self.resolver is None:
            return None
        return self.resolver(node)

    def _power_down(self, node: SimulatedNode) -> Tuple[bool, str]:
        located = self._locate(node)
        if located is None:
            # Last resort: ask the OS (works only if it is alive).
            if node.is_running():
                node.halt()
                node.power_off()
                return True, "soft power-off (no ICE Box)"
            return False, "no ICE Box path and node unresponsive"
        box, port = located
        box.power.power_off(port)
        return True, f"outlet off via {box.name} port {port}"

    def _reboot(self, node: SimulatedNode) -> Tuple[bool, str]:
        located = self._locate(node)
        if located is None:
            if node.is_running():
                node.reset()
                return True, "soft reboot (no ICE Box)"
            return False, "no ICE Box path and node unresponsive"
        box, port = located
        if not box.reset_line(port).assert_reset():
            return False, "node has no power"
        return True, f"hardware reset via {box.name} port {port}"
