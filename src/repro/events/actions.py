"""Event actions (§5.2): "Default actions include node power down and node
reboot" — plus halt, and administrator plug-ins ("shell scripts, perl
scripts, symbolic links, programs, and more").

Power actions go through the ICE Box that feeds the node (resolved by a
caller-supplied resolver), because a crashed or overheating node cannot be
asked nicely — which is the whole point of the design.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hardware.node import SimulatedNode
from repro.icebox.box import IceBox

__all__ = ["ActionContext", "ActionDispatcher", "ActionRecord",
           "RemoteCommandAction"]

#: resolver: node -> (icebox, port) or None when unmanaged.
Resolver = Callable[[SimulatedNode], Optional[Tuple[IceBox, int]]]


@dataclass
class ActionRecord:
    time: float
    node: str
    action: str
    ok: bool
    detail: str = ""


@dataclass
class ActionContext:
    """What a context-aware plug-in action gets to see of the stack.

    ``cluster`` is the :class:`repro.core.cluster.Cluster` (topology,
    groups), ``remote`` the :class:`repro.remote.engine.TaskEngine` for
    fan-out runs, ``resolver`` a
    :class:`repro.remote.nodeset.GroupResolver` for ``@group`` patterns.
    All optional: plug-ins must tolerate missing handles.
    """

    cluster: Optional[object] = None
    remote: Optional[object] = None
    resolver: Optional[object] = None


def _wants_context(fn: Callable) -> bool:
    """True when a plug-in accepts a second (context) argument.

    Legacy single-argument plug-ins keep working: they are called with
    the node only.
    """
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    positional = 0
    for param in sig.parameters.values():
        if param.kind in (param.POSITIONAL_ONLY,
                          param.POSITIONAL_OR_KEYWORD):
            positional += 1
        elif param.kind is param.VAR_POSITIONAL:
            return True
    return positional >= 2


class ActionDispatcher:
    """Executes named actions against nodes."""

    def __init__(self, resolver: Optional[Resolver] = None,
                 context: Optional[ActionContext] = None):
        self.resolver = resolver
        self.context = context
        self.records: List[ActionRecord] = []
        self._custom: Dict[str, Tuple[Callable, bool]] = {}

    # -- plug-in actions -----------------------------------------------------
    def register(self, name: str, fn: Callable) -> None:
        """Register a plug-in action.

        ``fn`` is called as ``fn(node)`` or — if its signature takes two
        positional arguments — ``fn(node, context)``, where context is
        this dispatcher's :class:`ActionContext` (possibly None).
        """
        if name in ("power_down", "reboot", "halt", "none"):
            raise ValueError(f"cannot shadow builtin action {name!r}")
        self._custom[name] = (fn, _wants_context(fn))

    @property
    def action_names(self) -> List[str]:
        return sorted(["power_down", "reboot", "halt", "none"]
                      + list(self._custom))

    # -- execution -------------------------------------------------------------
    def execute(self, name: str, node: SimulatedNode, t: float
                ) -> ActionRecord:
        ok, detail = True, ""
        try:
            if name == "none":
                pass
            elif name == "power_down":
                ok, detail = self._power_down(node)
            elif name == "reboot":
                ok, detail = self._reboot(node)
            elif name == "halt":
                node.halt()
                detail = "halted"
            elif name in self._custom:
                fn, wants_context = self._custom[name]
                result = fn(node, self.context) if wants_context \
                    else fn(node)
                detail = f"custom: {result!r}"
            else:
                ok, detail = False, f"unknown action {name!r}"
        except Exception as exc:
            ok, detail = False, f"action raised: {exc}"
        record = ActionRecord(time=t, node=node.hostname, action=name,
                              ok=ok, detail=detail)
        self.records.append(record)
        return record

    def _locate(self, node: SimulatedNode
                ) -> Optional[Tuple[IceBox, int]]:
        if self.resolver is None:
            return None
        return self.resolver(node)

    def _power_down(self, node: SimulatedNode) -> Tuple[bool, str]:
        located = self._locate(node)
        if located is None:
            # Last resort: ask the OS (works only if it is alive).
            if node.is_running():
                node.halt()
                node.power_off()
                return True, "soft power-off (no ICE Box)"
            return False, "no ICE Box path and node unresponsive"
        box, port = located
        box.power.power_off(port)
        return True, f"outlet off via {box.name} port {port}"

    def _reboot(self, node: SimulatedNode) -> Tuple[bool, str]:
        located = self._locate(node)
        if located is None:
            if node.is_running():
                node.reset()
                return True, "soft reboot (no ICE Box)"
            return False, "no ICE Box path and node unresponsive"
        box, port = located
        if not box.reset_line(port).assert_reset():
            return False, "node has no power"
        return True, f"hardware reset via {box.name} port {port}"


class RemoteCommandAction:
    """Plug-in action that fans a command out over a whole NodeSet.

    The paper's §5.2 "custom plug-in" hook, scaled up: instead of acting
    on the one node that breached the threshold, the action resolves a
    target pattern — ``{node}`` expands to the triggering hostname and
    ``{rack}`` to its rack group, so ``"@{rack}"`` reboots the entire
    rack through the ICE Box power path in one engine run::

        dispatcher.register(
            "reboot_rack", RemoteCommandAction("reboot", "@{rack}"))

    The fan-out run is *scheduled*, not awaited — the action fires inside
    the event loop, so the sweep proceeds as simulated time advances.
    Finished runs are kept on :attr:`runs` for inspection.
    """

    def __init__(self, command: str, targets: str = "@all", *,
                 engine=None, fanout: Optional[int] = None,
                 failure_policy: Optional[str] = None):
        self.command = command
        self.targets = targets
        self.engine = engine
        self.fanout = fanout
        self.failure_policy = failure_policy
        self.runs: List[object] = []

    def _rack_group(self, node: SimulatedNode,
                    context: Optional[ActionContext]) -> str:
        cluster = context.cluster if context is not None else None
        if cluster is not None and hasattr(cluster, "rack_name"):
            rack = cluster.rack_name(node.hostname)
            if rack is not None:
                return rack
        return node.hostname  # degenerate rack: the node itself

    def __call__(self, node: SimulatedNode,
                 context: Optional[ActionContext] = None) -> str:
        from repro.remote.nodeset import NodeSet

        engine = self.engine
        if engine is None and context is not None:
            engine = context.remote
        if engine is None:
            raise RuntimeError(
                "RemoteCommandAction needs a TaskEngine (pass engine= or "
                "dispatch with an ActionContext)")
        pattern = self.targets.format(
            node=node.hostname, rack=self._rack_group(node, context))
        resolver = context.resolver if context is not None else None
        if resolver is None:
            resolver = engine.resolver()
        nodes = NodeSet(pattern, resolver=resolver)
        options: Dict[str, object] = {}
        if self.fanout is not None:
            options["fanout"] = self.fanout
        if self.failure_policy is not None:
            options["failure_policy"] = self.failure_policy
        task = engine.run(self.command, nodes, **options)
        self.runs.append(task)
        return (f"{self.command!r} -> {nodes.fold()} "
                f"({len(nodes)} nodes) dispatched")
