"""Threshold rules (§5.2): "an event engine that allows administrators to
set thresholds on any value monitored."

A rule names a metric, a comparison, an action, and whether the
administrator wants to be notified.  ``hold_time`` requires the condition
to persist before the event fires (debounce for noisy metrics);
``clear_band`` is hysteresis on the clearing side so a value hovering at
the threshold does not flap.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional

__all__ = ["ThresholdRule", "Severity"]

_OPS: Dict[str, Callable[[object, object], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}


class Severity:
    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class ThresholdRule:
    """One administrator-defined event definition."""

    name: str
    metric: str
    op: str
    threshold: object
    action: str = "none"            # name in the ActionDispatcher
    notify: bool = True
    severity: str = Severity.WARNING
    #: seconds the condition must persist before firing (0 = immediate).
    hold_time: float = 0.0
    #: fraction of the threshold the value must retreat past to clear
    #: (numeric metrics only).
    clear_band: float = 0.0
    #: restrict the rule to these hostnames (None = whole cluster).
    scope: Optional[FrozenSet[str]] = None

    def applies_to(self, hostname: str) -> bool:
        return self.scope is None or hostname in self.scope

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}")
        if self.hold_time < 0:
            raise ValueError("hold_time must be >= 0")
        if not 0 <= self.clear_band < 1:
            raise ValueError("clear_band must be in [0, 1)")

    def breached(self, value: object) -> bool:
        """Is the trigger condition met by ``value``?"""
        try:
            return _OPS[self.op](value, self.threshold)
        except TypeError:
            return False

    def cleared(self, value: object) -> bool:
        """Has the value retreated far enough to clear the event?"""
        if self.breached(value):
            return False
        if (self.clear_band == 0.0
                or not isinstance(value, (int, float))
                or not isinstance(self.threshold, (int, float))):
            return True
        margin = abs(self.threshold) * self.clear_band
        if self.op in (">", ">="):
            return value <= self.threshold - margin
        if self.op in ("<", "<="):
            return value >= self.threshold + margin
        return True
