"""Smart notification (§5.2).

The paper's algorithm, verbatim requirements:

* "Using a smart notification algorithm, ClusterWorX notifies
  administrators of problems without swamping them with unnecessary
  e-mails."
* The email names the cluster, the triggered event, the node(s) involved,
  and the action taken.
* "Only one e-mail is sent per triggered event, even if multiple nodes are
  involved."  — nodes triggering the same event within an aggregation
  window ride along on one email.
* "If a node is fixed by an administrator but fails again later, the event
  re-fires automatically, without administrative intervention."
* "E-mail can be directed to most wireless devices such as pagers and cell
  phones." — gateways with device-appropriate truncation.

:class:`NaiveNotifier` is the E8 baseline: one email per node per trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim import SimKernel

__all__ = ["EmailMessage", "EmailGateway", "PagerGateway",
           "SmartNotifier", "NaiveNotifier"]


@dataclass
class EmailMessage:
    time: float
    cluster: str
    event: str
    nodes: List[str]
    action: str
    severity: str
    body: str = ""


class EmailGateway:
    """Records deliveries (the SMTP hop is out of scope; see DESIGN.md)."""

    def __init__(self, address: str = "admin@cluster"):
        self.address = address
        self.inbox: List[EmailMessage] = []

    def deliver(self, message: EmailMessage) -> None:
        self.inbox.append(message)


class PagerGateway(EmailGateway):
    """A wireless device: truncates to a pager-sized text."""

    MAX_CHARS = 160

    def deliver(self, message: EmailMessage) -> None:
        short = (f"{message.cluster}/{message.event}: "
                 f"{len(message.nodes)} node(s) "
                 f"[{','.join(message.nodes[:3])}"
                 f"{'...' if len(message.nodes) > 3 else ''}] "
                 f"action={message.action}")
        message = EmailMessage(
            time=message.time, cluster=message.cluster, event=message.event,
            nodes=message.nodes, action=message.action,
            severity=message.severity, body=short[: self.MAX_CHARS])
        self.inbox.append(message)


class SmartNotifier:
    """Deduplicating, re-fire-aware notification."""

    def __init__(self, kernel: SimKernel, cluster: str, *,
                 gateways: Optional[List[EmailGateway]] = None,
                 routes: Optional[Dict[str, List[EmailGateway]]] = None,
                 aggregation_window: float = 30.0):
        """``routes`` optionally maps severity -> gateway list (e.g.
        critical pages the on-call phone, warnings only email); severities
        without a route fall back to ``gateways``."""
        self.kernel = kernel
        self.cluster = cluster
        self.gateways = gateways if gateways is not None else [EmailGateway()]
        self.routes = routes if routes is not None else {}
        self.aggregation_window = aggregation_window
        #: nodes whose (event) notification is still "open" — no repeat
        #: email until the node clears.
        self._notified: Dict[str, Set[str]] = {}
        #: batches being aggregated: event -> list of (node, action).
        self._pending: Dict[str, List[tuple[str, str]]] = {}
        self.emails_sent = 0
        self.suppressed = 0

    # -- engine-facing -----------------------------------------------------
    def event_triggered(self, event: str, node: str, action: str,
                        severity: str) -> None:
        """A rule fired for a node."""
        open_nodes = self._notified.setdefault(event, set())
        if node in open_nodes:
            # Still failing and already reported: suppress.
            self.suppressed += 1
            return
        open_nodes.add(node)
        batch = self._pending.get(event)
        if batch is not None:
            # An aggregation window is open: ride along, no extra email.
            batch.append((node, action))
            self.suppressed += 1
            return
        self._pending[event] = [(node, action)]
        self.kernel.process(self._flush_later(event, severity),
                            name=f"notify:{event}")

    def event_cleared(self, event: str, node: str) -> None:
        """The node's condition returned to normal (fixed).

        Removing it from the open set is what makes the event *re-fire
        automatically* if the node fails again later.
        """
        self._notified.get(event, set()).discard(node)

    # -- delivery ---------------------------------------------------------------
    def _flush_later(self, event: str, severity: str):
        yield self.kernel.timeout(self.aggregation_window)
        batch = self._pending.pop(event, [])
        if not batch:
            return
        nodes = [node for node, _ in batch]
        actions = sorted({action for _, action in batch})
        message = EmailMessage(
            time=self.kernel.now, cluster=self.cluster, event=event,
            nodes=nodes, action=",".join(actions) or "none",
            severity=severity,
            body=(f"Cluster {self.cluster}: event '{event}' triggered on "
                  f"{len(nodes)} node(s): {', '.join(nodes)}. "
                  f"Action taken: {','.join(actions) or 'none'}."))
        for gateway in self.routes.get(severity, self.gateways):
            gateway.deliver(message)
        self.emails_sent += 1


class NaiveNotifier:
    """The baseline §5.2 exists to avoid: one email per node per trigger,
    re-sent every evaluation while the condition persists."""

    def __init__(self, kernel: SimKernel, cluster: str, *,
                 gateways: Optional[List[EmailGateway]] = None):
        self.kernel = kernel
        self.cluster = cluster
        self.gateways = gateways if gateways is not None else [EmailGateway()]
        self.emails_sent = 0

    def event_triggered(self, event: str, node: str, action: str,
                        severity: str) -> None:
        message = EmailMessage(
            time=self.kernel.now, cluster=self.cluster, event=event,
            nodes=[node], action=action, severity=severity,
            body=f"event '{event}' on {node}")
        for gateway in self.gateways:
            gateway.deliver(message)
        self.emails_sent += 1

    def event_cleared(self, event: str, node: str) -> None:
        pass

    def still_failing(self, event: str, node: str, action: str,
                      severity: str) -> None:
        """Naive systems nag on every evaluation."""
        self.event_triggered(event, node, action, severity)
