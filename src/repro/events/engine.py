"""The event engine (§5.2): evaluates rules against monitor updates,
drives actions, and feeds the notifier.

Per (rule, node) the engine keeps a tiny state machine::

    OK --condition met--> PENDING (hold_time running)
    PENDING --still met after hold_time--> TRIGGERED (action + notify)
    PENDING --condition gone--> OK
    TRIGGERED --cleared (with hysteresis)--> OK   (enables re-fire)

"This allows corrective action to be taken before problems become
critical (e.g. powering down a node on CPU fan failure to prevent the CPU
from burning)" — see tests/test_events for exactly that scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.events.actions import ActionDispatcher
from repro.events.notification import SmartNotifier
from repro.events.rules import ThresholdRule
from repro.hardware.node import SimulatedNode
from repro.sim import SimKernel

__all__ = ["EventEngine", "FiredEvent"]


@dataclass
class FiredEvent:
    time: float
    rule: str
    node: str
    value: object
    action: str
    action_ok: bool


class _RuleState:
    __slots__ = ("triggered", "pending_since")

    def __init__(self) -> None:
        self.triggered = False
        self.pending_since: Optional[float] = None


class EventEngine:
    """Rules + per-node state + dispatch."""

    def __init__(self, kernel: SimKernel, *,
                 dispatcher: Optional[ActionDispatcher] = None,
                 notifier: Optional[SmartNotifier] = None,
                 indexed: bool = True):
        self.kernel = kernel
        self.dispatcher = dispatcher if dispatcher is not None \
            else ActionDispatcher()
        self.notifier = notifier
        self._rules: Dict[str, ThresholdRule] = {}
        self._state: Dict[Tuple[str, str], _RuleState] = {}
        #: currently-triggered (rule, hostname) pairs, maintained
        #: incrementally so active_count() is O(1).
        self._active: set[Tuple[str, str]] = set()
        #: last value seen per (hostname, metric): change suppression
        #: means a delta without a metric implies "same as before".
        self._last: Dict[Tuple[str, str], object] = {}
        self.fired: List[FiredEvent] = []
        #: fn(fired_event, rule) called after every firing — the hook
        #: the health tracker uses to treat critical events as evidence.
        self._listeners: List = []
        #: metric-indexed evaluation (False = legacy scan of every rule
        #: per update; the determinism suite compares the two).
        self.indexed = indexed
        # -- metric -> rule index (see feed()) ---------------------------
        self._index: Dict[str, List[str]] = {}
        #: rule insertion rank — candidate sets are replayed in exactly
        #: the order the legacy full scan visits rules.
        self._order: Dict[str, int] = {}
        self._next_order = 0
        #: hostname -> rule names currently maturing a hold_time; these
        #: must be re-evaluated on *every* update for the host (time
        #: alone can trigger them), delta contents notwithstanding.
        self._pending: Dict[str, set[str]] = {}
        #: rule-set version, per-host sync marker: a host whose marker
        #: is stale takes one legacy full scan (initialising state for
        #: rules added since) before indexed evaluation resumes.
        self._rules_version = 0
        self._rules_seen: Dict[str, int] = {}

    def add_listener(self, listener) -> None:
        """Register ``fn(fired: FiredEvent, rule: ThresholdRule)`` to be
        called synchronously after each rule firing."""
        self._listeners.append(listener)

    # -- rule management ----------------------------------------------------
    def add_rule(self, rule: ThresholdRule) -> None:
        if rule.name in self._rules:
            raise ValueError(f"rule {rule.name!r} already exists")
        self._rules[rule.name] = rule
        self._index.setdefault(rule.metric, []).append(rule.name)
        self._order[rule.name] = self._next_order
        self._next_order += 1
        # Invalidate every host's sync marker: the new rule must get one
        # legacy evaluation per host against remembered values before
        # indexed skipping is safe again.
        self._rules_version += 1

    def remove_rule(self, name: str) -> None:
        rule = self._rules.pop(name, None)
        for key in [k for k in self._state if k[0] == name]:
            del self._state[key]
            self._active.discard(key)
        if rule is None:
            return
        self._order.pop(name, None)
        by_metric = self._index.get(rule.metric)
        if by_metric is not None and name in by_metric:
            by_metric.remove(name)
        for pending in self._pending.values():
            pending.discard(name)

    def forget_node(self, hostname: str) -> None:
        """Drop all per-node rule state and change-suppression memory —
        the hot-remove path (a decommissioned node must not keep events
        active or ghost-evaluate against stale values)."""
        for key in [k for k in self._state if k[1] == hostname]:
            del self._state[key]
            self._active.discard(key)
        for key in [k for k in self._last if k[0] == hostname]:
            del self._last[key]
        self._pending.pop(hostname, None)
        self._rules_seen.pop(hostname, None)

    @property
    def rules(self) -> List[ThresholdRule]:
        return [self._rules[n] for n in sorted(self._rules)]

    def is_triggered(self, rule_name: str, hostname: str) -> bool:
        state = self._state.get((rule_name, hostname))
        return bool(state and state.triggered)

    def active_events(self) -> List[Tuple[str, str]]:
        """The currently-triggered (rule, hostname) pairs, sorted."""
        return sorted(self._active)

    def active_count(self) -> int:
        """How many (rule, node) events are currently triggered; O(1)."""
        return len(self._active)

    # -- evaluation ---------------------------------------------------------
    def _candidates(self, hostname: str, values: Dict[str, object]):
        """The rules one update can possibly affect, in legacy scan order.

        An update touches a rule iff (a) the rule's metric is in the
        delta, or (b) the rule is maturing a hold_time for this host (the
        clock alone can trigger it).  Everything else is provably a
        no-op: an OK rule re-evaluates an unchanged value to the same
        verdict, and a TRIGGERED rule cannot clear on a value that did
        not clear it last time.  Index invalidation: ``add_rule`` bumps
        the rule-set version, forcing one full scan per host (which
        initialises the new rule against remembered values);
        ``remove_rule`` needs no invalidation because skipping a deleted
        rule is always correct.
        """
        if not self.indexed:
            return self._rules.values()
        if self._rules_seen.get(hostname) != self._rules_version:
            self._rules_seen[hostname] = self._rules_version
            return self._rules.values()
        pending = self._pending.get(hostname)
        if len(self._rules) <= len(values):
            # Fewer rules than delta metrics: filtering the rule list
            # directly beats walking the index.
            return [rule for rule in self._rules.values()
                    if rule.metric in values
                    or (pending and rule.name in pending)]
        index = self._index
        names: set[str] = set()
        for metric in values:
            hit = index.get(metric)
            if hit:
                names.update(hit)
        if pending:
            names.update(pending)
        if not names:
            return ()
        rules = self._rules
        return [rules[name] for name in
                sorted(names, key=self._order.__getitem__)]

    def feed(self, node: SimulatedNode,
             values: Dict[str, object]) -> List[FiredEvent]:
        """Evaluate the affected rules against one node's (partial)
        update.

        Metrics absent from ``values`` leave their rules untouched — the
        consolidation stage only ships changes, so absence means "same as
        before", not "unknown".
        """
        now = self.kernel.now
        hostname = node.hostname
        last = self._last
        for name, value in values.items():
            last[(hostname, name)] = value
        fired: List[FiredEvent] = []
        missing = object()
        for rule in self._candidates(hostname, values):
            if not rule.applies_to(hostname):
                continue
            # Absent metrics mean "unchanged" under change suppression —
            # evaluate against the last known value so hold-time rules
            # still mature while a breached value sits constant.
            value = values.get(
                rule.metric,
                last.get((hostname, rule.metric), missing))
            if value is missing:
                continue
            key = (rule.name, hostname)
            state = self._state.get(key)
            if state is None:
                state = self._state[key] = _RuleState()

            if not state.triggered:
                if rule.breached(value):
                    if state.pending_since is None:
                        state.pending_since = now
                        self._pending.setdefault(hostname,
                                                 set()).add(rule.name)
                    if now - state.pending_since >= rule.hold_time:
                        state.triggered = True
                        state.pending_since = None
                        self._pending[hostname].discard(rule.name)
                        self._active.add(key)
                        fired.append(self._fire(rule, node, value))
                else:
                    if state.pending_since is not None:
                        state.pending_since = None
                        self._pending[hostname].discard(rule.name)
            else:
                if rule.cleared(value):
                    state.triggered = False
                    self._active.discard(key)
                    if self.notifier is not None:
                        self.notifier.event_cleared(rule.name,
                                                    hostname)
        self.fired.extend(fired)
        for event in fired:
            rule = self._rules.get(event.rule)
            for listener in list(self._listeners):
                listener(event, rule)
        return fired

    def _fire(self, rule: ThresholdRule, node: SimulatedNode,
              value: object) -> FiredEvent:
        record = self.dispatcher.execute(rule.action, node, self.kernel.now)
        if self.notifier is not None and rule.notify:
            self.notifier.event_triggered(rule.name, node.hostname,
                                          rule.action, rule.severity)
        return FiredEvent(time=self.kernel.now, rule=rule.name,
                          node=node.hostname, value=value,
                          action=rule.action, action_ok=record.ok)

    # -- event log --------------------------------------------------------
    def event_log(self, *, since: float = 0.0,
                  rule: Optional[str] = None,
                  node: Optional[str] = None,
                  limit: Optional[int] = None) -> List[FiredEvent]:
        """Query the fired-event history (newest last)."""
        out = [e for e in self.fired
               if e.time >= since
               and (rule is None or e.rule == rule)
               and (node is None or e.node == node)]
        if limit is not None:
            out = out[-limit:]
        return out

    # -- manual administration -------------------------------------------------
    def mark_fixed(self, rule_name: str, hostname: str) -> None:
        """An administrator fixed the node out-of-band: clear the trigger
        so the event can re-fire (§5.2's re-fire semantics)."""
        state = self._state.get((rule_name, hostname))
        if state is not None:
            state.triggered = False
            state.pending_since = None
        pending = self._pending.get(hostname)
        if pending is not None:
            pending.discard(rule_name)
        # Force one full scan on the node's next update: re-fire must
        # re-evaluate the (possibly still breached, unchanged) value the
        # index would otherwise skip.
        self._rules_seen.pop(hostname, None)
        self._active.discard((rule_name, hostname))
        if self.notifier is not None:
            self.notifier.event_cleared(rule_name, hostname)
