"""Event handling: rules, actions, smart notification (§5.2)."""

from repro.events.actions import ActionDispatcher, ActionRecord
from repro.events.engine import EventEngine, FiredEvent
from repro.events.notification import (
    EmailGateway,
    EmailMessage,
    NaiveNotifier,
    PagerGateway,
    SmartNotifier,
)
from repro.events.rules import Severity, ThresholdRule

__all__ = [
    "ActionDispatcher",
    "ActionRecord",
    "EmailGateway",
    "EmailMessage",
    "EventEngine",
    "FiredEvent",
    "NaiveNotifier",
    "PagerGateway",
    "Severity",
    "SmartNotifier",
    "ThresholdRule",
]
