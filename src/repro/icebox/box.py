"""The ICE Box itself (§3): embedded controller tying power, probes and
serial ports together, plus the shared command processor every access
protocol (SIMP, NIMP, telnet, ssh, SNMP) front-ends.

Command language (one command per line, case-insensitive)::

    POWER ON <port>|ALL        POWER OFF <port>|ALL     POWER CYCLE <port>
    POWER SEQ [stagger]        POWER STATUS <port>
    RESET <port>
    TEMP <port>                FAN <port>               PSU <port>
    CONSOLE <port> [lines]     STATUS                   VERSION

Responses are ``OK[: payload]`` or ``ERR: reason`` — the native ICE
management protocol framing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.node import SimulatedNode
from repro.icebox.power import PowerController
from repro.icebox.probes import PowerProbe, ResetLine, TemperatureProbe
from repro.icebox.serial_console import SerialPort
from repro.sim import SimKernel

__all__ = ["IceBox"]


class IceBox:
    """One ICE Box: 10 managed nodes, 2 aux outlets, serial + probes."""

    FIRMWARE_VERSION = "ICE Box v2.1 (simulated)"

    def __init__(self, kernel: SimKernel, name: str = "icebox0"):
        self.kernel = kernel
        self.name = name
        self.power = PowerController(kernel)
        self.ports: List[SerialPort] = [
            SerialPort(kernel, i) for i in range(PowerController.N_NODE_OUTLETS)]
        self._nodes: Dict[int, SimulatedNode] = {}
        #: a dead controller answers nothing — chaos campaigns flip this
        #: to exercise the orchestrator's circuit breakers.
        self.healthy = True

    def fail(self) -> None:
        """Kill the embedded controller (management path goes silent)."""
        self.healthy = False

    def repair(self) -> None:
        self.healthy = True

    # -- topology -------------------------------------------------------
    def connect_node(self, port: int, node: SimulatedNode) -> None:
        """Wire a node to outlet + serial + probes on ``port``."""
        if port in self._nodes:
            raise ValueError(f"port {port} already in use")
        self.power.connect(port, node)
        self.ports[port].attach(node)
        self._nodes[port] = node

    def node_at(self, port: int) -> Optional[SimulatedNode]:
        return self._nodes.get(port)

    def disconnect_node(self, port: int) -> Optional[SimulatedNode]:
        """Free ``port``: power the outlet off, detach the serial line,
        and forget the node.  Returns the node that was connected."""
        node = self._nodes.pop(port, None)
        if node is not None:
            self.power.power_off(port)
            self.ports[port].detach()
        return node

    def port_of(self, node: SimulatedNode) -> Optional[int]:
        for port, n in self._nodes.items():
            if n is node:
                return port
        return None

    @property
    def nodes(self) -> List[SimulatedNode]:
        return [self._nodes[p] for p in sorted(self._nodes)]

    # -- probes -----------------------------------------------------------
    def temperature_probe(self, port: int) -> TemperatureProbe:
        return TemperatureProbe(self._require(port))

    def power_probe(self, port: int) -> PowerProbe:
        return PowerProbe(self._require(port))

    def reset_line(self, port: int) -> ResetLine:
        return ResetLine(self._require(port))

    def console(self, port: int) -> SerialPort:
        if not 0 <= port < len(self.ports):
            raise IndexError(f"port {port} out of range")
        return self.ports[port]

    def _require(self, port: int) -> SimulatedNode:
        node = self._nodes.get(port)
        if node is None:
            raise KeyError(f"no node on port {port}")
        return node

    # -- command processor -------------------------------------------------
    def execute(self, command: str) -> str:
        """Run one management command; never raises, returns OK/ERR text."""
        try:
            if not self.healthy:
                return "ERR: no response"
            return self._dispatch(command.strip())
        except (KeyError, IndexError, ValueError) as exc:
            return f"ERR: {exc}"

    def _parse_port(self, token: str) -> int:
        port = int(token)
        if port not in self._nodes:
            raise KeyError(f"no node on port {port}")
        return port

    def _dispatch(self, command: str) -> str:
        if not command:
            return "ERR: empty command"
        words = command.split()
        verb = words[0].upper()
        now = self.kernel.now

        if verb == "VERSION":
            return f"OK: {self.FIRMWARE_VERSION}"

        if verb == "STATUS":
            rows = []
            for port in sorted(self._nodes):
                node = self._nodes[port]
                outlet = self.power.outlet(port)
                rows.append(f"{port}:{node.hostname}:"
                            f"{'on' if outlet.on else 'off'}:"
                            f"{node.state.value}")
            return "OK: " + " ".join(rows) if rows else "OK: no nodes"

        if verb == "POWER":
            if len(words) < 2:
                raise ValueError("POWER needs a subcommand")
            sub = words[1].upper()
            if sub == "SEQ":
                stagger = float(words[2]) if len(words) > 2 else 1.0
                self.power.sequenced_power_on(sorted(self._nodes),
                                              stagger=stagger)
                return "OK: sequencing started"
            if sub == "STATUS":
                port = self._parse_port(words[2])
                outlet = self.power.outlet(port)
                return f"OK: {'on' if outlet.on else 'off'}"
            if sub in ("ON", "OFF", "CYCLE"):
                target = words[2].upper()
                if target == "ALL":
                    ports = sorted(self._nodes)
                else:
                    ports = [self._parse_port(target)]
                for port in ports:
                    if sub == "ON":
                        self.power.power_on(port)
                    elif sub == "OFF":
                        self.power.power_off(port)
                    else:
                        self.power.power_cycle(port)
                return f"OK: power {sub.lower()} {len(ports)} outlet(s)"
            raise ValueError(f"unknown POWER subcommand {sub}")

        if verb == "RESET":
            port = self._parse_port(words[1])
            ok = self.reset_line(port).assert_reset()
            return "OK: reset asserted" if ok else "ERR: node has no power"

        if verb == "TEMP":
            port = self._parse_port(words[1])
            probe = self.temperature_probe(port)
            return (f"OK: cpu={probe.cpu_temperature(now):.1f} "
                    f"board={probe.board_temperature(now):.1f}")

        if verb == "FAN":
            port = self._parse_port(words[1])
            probe = self.temperature_probe(port)
            return f"OK: fan1={probe.fan_rpm(now):.0f}rpm"

        if verb == "PSU":
            port = self._parse_port(words[1])
            probe = self.power_probe(port)
            return (f"OK: {'ok' if probe.supply_ok(now) else 'FAIL'} "
                    f"volts={probe.voltage(now):.1f} "
                    f"watts={probe.watts(now):.1f}")

        if verb == "CONSOLE":
            port = int(words[1])
            lines = int(words[2]) if len(words) > 2 else 20
            tail = self.console(port).tail(lines)
            return "OK:\n" + "\n".join(tail)

        raise ValueError(f"unknown command {verb}")
