"""The ICE Box: per-rack power, probes, serial console and protocols (§3)."""

from repro.icebox.box import IceBox
from repro.icebox.power import (
    INLET_RATING_AMPS,
    AuxOutlet,
    NodeOutlet,
    PowerController,
    aggregate_draw,
    peak_inrush,
)
from repro.icebox.probes import PowerProbe, ResetLine, TemperatureProbe
from repro.icebox.security import FilterRule, IPFilter
from repro.icebox.serial_console import SerialPort

__all__ = [
    "AuxOutlet",
    "FilterRule",
    "INLET_RATING_AMPS",
    "IPFilter",
    "IceBox",
    "NodeOutlet",
    "PowerController",
    "PowerProbe",
    "ResetLine",
    "SerialPort",
    "TemperatureProbe",
    "aggregate_draw",
    "peak_inrush",
]
