"""ICE Box power subsystem (§3.1).

Each ICE Box feeds 10 node outlets and 2 auxiliary outlets from two 15 A
inlets (5 nodes + 1 aux per inlet).  Node outlets can be cycled on demand;
aux outlets are powered whenever the box has power — "to ensure that host
nodes, switches and other devices are not powered off by mistake".

Power-up *sequencing* staggers outlet switch-on so the PSU inrush
transients do not stack; :func:`aggregate_draw` and :func:`peak_inrush`
evaluate the analytic PSU draw curves to quantify exactly that (experiment
E10).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.node import SimulatedNode
from repro.sim import SimKernel

__all__ = ["NodeOutlet", "AuxOutlet", "PowerController",
           "aggregate_draw", "peak_inrush"]

#: rated amps per inlet; exceeding this in E10 means a tripped breaker.
INLET_RATING_AMPS = 15.0


class NodeOutlet:
    """A switchable outlet feeding one compute node."""

    def __init__(self, index: int, inlet: int):
        self.index = index
        self.inlet = inlet
        self.node: Optional[SimulatedNode] = None
        self.on = False

    def connect(self, node: SimulatedNode) -> None:
        self.node = node

    def switch_on(self) -> None:
        if self.node is None:
            self.on = True
            return
        self.on = True
        self.node.power_on()

    def switch_off(self) -> None:
        self.on = False
        if self.node is not None:
            self.node.power_off()

    def draw(self, t: float) -> float:
        if not self.on or self.node is None:
            return 0.0
        return self.node.psu.draw(t)


class AuxOutlet:
    """Always-on outlet for host nodes, switches, storage."""

    def __init__(self, index: int, inlet: int, load_watts: float = 120.0):
        self.index = index
        self.inlet = inlet
        self.load_watts = load_watts

    def draw(self, t: float) -> float:
        return self.load_watts


class PowerController:
    """The 12 outlets of one ICE Box, with sequencing policy."""

    N_NODE_OUTLETS = 10
    N_AUX_OUTLETS = 2

    def __init__(self, kernel: SimKernel, *, volts: float = 115.0):
        self.kernel = kernel
        self.volts = volts
        # Outlets 0-4 on inlet 0, 5-9 on inlet 1; one aux per inlet.
        self.node_outlets: List[NodeOutlet] = [
            NodeOutlet(i, inlet=0 if i < 5 else 1)
            for i in range(self.N_NODE_OUTLETS)]
        self.aux_outlets: List[AuxOutlet] = [
            AuxOutlet(0, inlet=0), AuxOutlet(1, inlet=1)]

    def outlet(self, port: int) -> NodeOutlet:
        if not 0 <= port < self.N_NODE_OUTLETS:
            raise IndexError(f"node outlet {port} out of range 0..9")
        return self.node_outlets[port]

    def connect(self, port: int, node: SimulatedNode) -> None:
        self.outlet(port).connect(node)

    # -- switching ---------------------------------------------------------
    def power_on(self, port: int) -> None:
        self.outlet(port).switch_on()

    def power_off(self, port: int) -> None:
        self.outlet(port).switch_off()

    def power_cycle(self, port: int, *, off_time: float = 2.0):
        """Cycle one outlet; returns a process event (yieldable)."""
        outlet = self.outlet(port)

        def _cycle():
            outlet.switch_off()
            yield self.kernel.timeout(off_time)
            outlet.switch_on()

        return self.kernel.process(_cycle(), name=f"cycle:{port}")

    def sequenced_power_on(self, ports: Optional[Sequence[int]] = None, *,
                           stagger: float = 1.0):
        """Switch outlets on one at a time, ``stagger`` seconds apart.

        This is the paper's "automatically sequences power, reducing the
        risk of power spikes".  Returns a process event that fires when the
        last outlet is on.
        """
        if ports is None:
            ports = range(self.N_NODE_OUTLETS)
        ports = list(ports)

        def _sequence():
            for i, port in enumerate(ports):
                if i:
                    yield self.kernel.timeout(stagger)
                self.outlet(port).switch_on()

        return self.kernel.process(_sequence(), name="power-seq")

    def simultaneous_power_on(self,
                              ports: Optional[Sequence[int]] = None) -> None:
        """The no-sequencing baseline: everything at once."""
        if ports is None:
            ports = range(self.N_NODE_OUTLETS)
        for port in ports:
            self.outlet(port).switch_on()

    # -- electrical accounting ----------------------------------------------
    def inlet_draw(self, inlet: int, t: float) -> float:
        """Watts on one inlet at time ``t``."""
        watts = sum(o.draw(t) for o in self.node_outlets
                    if o.inlet == inlet)
        watts += sum(a.draw(t) for a in self.aux_outlets
                     if a.inlet == inlet)
        return watts

    def inlet_amps(self, inlet: int, t: float) -> float:
        return self.inlet_draw(inlet, t) / self.volts


def aggregate_draw(nodes: Sequence[SimulatedNode],
                   times: np.ndarray) -> np.ndarray:
    """Total watts of ``nodes`` sampled at ``times`` (vectorized over nodes)."""
    total = np.zeros_like(times, dtype=float)
    for node in nodes:
        total += np.array([node.psu.draw(float(t)) for t in times])
    return total


def peak_inrush(nodes: Sequence[SimulatedNode], t0: float, t1: float,
                *, resolution: float = 0.01,
                volts: float = 115.0) -> tuple[float, float]:
    """Peak aggregate amps (and its time) over ``[t0, t1]``."""
    times = np.arange(t0, t1, resolution)
    if len(times) == 0:
        raise ValueError("empty sampling window")
    amps = aggregate_draw(nodes, times) / volts
    idx = int(np.argmax(amps))
    return float(amps[idx]), float(times[idx])
