"""Serial console capture (§3.3).

Each ICE Box port buffers "up to 16k" of a node's serial output, enabling
"post-mortem analysis on what has happened to a specific node" — e.g.
reading the kernel panic and the LinuxBIOS error report of a node that is
now dead.  The port registers itself as the node's ``console_sink`` and
timestamps each chunk for the log view.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.hardware.node import SimulatedNode
from repro.sim import SimKernel
from repro.util.ringbuffer import ByteRingBuffer

__all__ = ["SerialPort"]


class SerialPort:
    """One console port with a 16 KiB capture ring buffer."""

    BUFFER_CAPACITY = 16 * 1024

    def __init__(self, kernel: SimKernel, index: int):
        self.kernel = kernel
        self.index = index
        self.node: Optional[SimulatedNode] = None
        self.buffer = ByteRingBuffer(self.BUFFER_CAPACITY)
        #: (timestamp, chunk) pairs for the most recent writes (bounded).
        self.log: List[Tuple[float, str]] = []
        self._log_limit = 512
        #: live listeners (telnet/ssh sessions mirroring the console).
        self._listeners: List[Callable[[str], None]] = []

    def attach(self, node: SimulatedNode) -> None:
        if self.node is not None:
            raise RuntimeError(f"port {self.index} already attached")
        self.node = node
        node.console_sink = self._sink

    def detach(self) -> None:
        if self.node is not None and self.node.console_sink == self._sink:
            self.node.console_sink = None
        self.node = None

    def _sink(self, text: str) -> None:
        if not text:
            return
        self.buffer.write(text)
        self.log.append((self.kernel.now, text))
        if len(self.log) > self._log_limit:
            del self.log[: len(self.log) - self._log_limit]
        for listener in list(self._listeners):
            listener(text)

    # -- access -------------------------------------------------------------
    def subscribe(self, listener: Callable[[str], None]) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[str], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def capture(self) -> str:
        """Current buffer contents (what a post-mortem reads)."""
        return self.buffer.text()

    def tail(self, lines: int = 20) -> List[str]:
        return self.buffer.tail_lines(lines)

    def send(self, text: str) -> bool:
        """Type into the node's console. Only a running OS reacts."""
        if self.node is None or not self.node.is_running():
            return False
        # Echo is the only universal behaviour we model.
        self._sink(text)
        return True

    def clear(self) -> None:
        self.buffer.clear()
        self.log.clear()
