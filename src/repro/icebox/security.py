"""Native IP filtering for ICE Box network access (§3.4).

"native IP filtering can be used for higher security" — an ordered
allow/deny rule list over dotted-quad prefixes, evaluated first-match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["IPFilter", "FilterRule"]


def _parse_cidr(cidr: str) -> tuple[int, int]:
    """Return (network, mask) as 32-bit ints for ``a.b.c.d[/n]``."""
    if "/" in cidr:
        addr, _, bits_s = cidr.partition("/")
        bits = int(bits_s)
    else:
        addr, bits = cidr, 32
    if not 0 <= bits <= 32:
        raise ValueError(f"bad prefix length in {cidr!r}")
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {addr!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad octet in {addr!r}")
        value = (value << 8) | octet
    mask = 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
    return value & mask, mask


@dataclass(frozen=True)
class FilterRule:
    action: str      # "allow" | "deny"
    network: int
    mask: int
    source: str      # original CIDR text, for display

    def matches(self, addr: int) -> bool:
        return (addr & self.mask) == self.network


class IPFilter:
    """First-match allow/deny list with a configurable default."""

    def __init__(self, default_allow: bool = True):
        self.rules: List[FilterRule] = []
        self.default_allow = default_allow

    def allow(self, cidr: str) -> None:
        net, mask = _parse_cidr(cidr)
        self.rules.append(FilterRule("allow", net, mask, cidr))

    def deny(self, cidr: str) -> None:
        net, mask = _parse_cidr(cidr)
        self.rules.append(FilterRule("deny", net, mask, cidr))

    def permits(self, address: str) -> bool:
        addr, _ = _parse_cidr(address)
        for rule in self.rules:
            if rule.matches(addr):
                return rule.action == "allow"
        return self.default_allow
