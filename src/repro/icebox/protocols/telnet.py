"""Telnet access to the ICE Box and its attached devices (§3.4).

"Telnet and ssh connections can be established either with the ICE Box or
with each individual device connected to the ICE Box using specific port
numbers."  Port 23 lands in the management shell; ports 2001..2010 attach
directly to the serial console of node port 0..9.
"""

from __future__ import annotations

from typing import List, Optional

from repro.icebox.box import IceBox
from repro.icebox.protocols.base import NetworkService, ProtocolError

__all__ = ["TelnetServer", "TelnetSession", "CONSOLE_PORT_BASE"]

CONSOLE_PORT_BASE = 2001


class TelnetSession:
    """One authenticated interactive session."""

    def __init__(self, server: "TelnetServer", source_ip: str,
                 console_index: Optional[int]):
        self.server = server
        self.source_ip = source_ip
        self.console_index = console_index
        self.authenticated = False
        self.closed = False
        self.output: List[str] = []
        if console_index is not None:
            port = server.box.console(console_index)
            port.subscribe(self.output.append)
            self._console = port
        else:
            self._console = None

    def login(self, username: str, password: str) -> bool:
        self.authenticated = self.server.credentials.get(username) == password
        return self.authenticated

    def command(self, line: str) -> str:
        """Management-shell command (only on the management port)."""
        if self.closed:
            raise ProtocolError("session closed")
        if not self.authenticated:
            return "ERR: login required"
        if self.console_index is not None:
            # On a console port, input is forwarded to the device instead.
            ok = self._console.send(line)
            return "" if ok else "ERR: device not responding"
        return self.server.box.execute(line)

    def close(self) -> None:
        if self._console is not None:
            self._console.unsubscribe(self.output.append)
        self.closed = True


class TelnetServer(NetworkService):
    """Accepts telnet connections on the management and console ports."""

    def __init__(self, box: IceBox, ip_filter=None, *,
                 credentials: Optional[dict] = None):
        super().__init__(box, ip_filter)
        self.credentials = credentials or {"admin": "icebox"}
        self.sessions: List[TelnetSession] = []

    def connect(self, source_ip: str, tcp_port: int = 23) -> TelnetSession:
        self.check_source(source_ip)
        console_index: Optional[int] = None
        if tcp_port != 23:
            console_index = tcp_port - CONSOLE_PORT_BASE
            if not 0 <= console_index < len(self.box.ports):
                raise ProtocolError(f"no service on tcp port {tcp_port}")
        session = TelnetSession(self, source_ip, console_index)
        self.sessions.append(session)
        return session
