"""Shared machinery for ICE Box access protocols (§3.4).

Every protocol ultimately front-ends :meth:`repro.icebox.box.IceBox.execute`;
what differs is framing, authentication, and whether the transport is the
serial line or the onboard Ethernet (where the IP filter applies).
"""

from __future__ import annotations

from typing import Optional

from repro.icebox.box import IceBox
from repro.icebox.security import IPFilter

__all__ = ["ProtocolError", "NetworkService"]


class ProtocolError(Exception):
    """Framing or authorization failure at the protocol layer."""


class NetworkService:
    """Base for Ethernet-borne services: applies the box's IP filter."""

    def __init__(self, box: IceBox, ip_filter: Optional[IPFilter] = None):
        self.box = box
        self.ip_filter = ip_filter if ip_filter is not None else IPFilter()

    def check_source(self, source_ip: str) -> None:
        if not self.ip_filter.permits(source_ip):
            raise ProtocolError(f"connection from {source_ip} filtered")
