"""SNMP compliance (§3.4): "ICE Boxes can be controlled through standard
SNMP management software."

A small agent exposing an enterprise OID subtree; GET for probes and outlet
state, SET on the outlet administrative-state column for power control.

OID layout (enterprise prefix ``1.3.6.1.4.1.7777``)::

    .1.0            sysDescr (string)
    .2.<port>.1     outlet admin state (1=on, 2=off)  [read-write]
    .2.<port>.2     node CPU temperature, centi-degC  [read-only]
    .2.<port>.3     PSU voltage, centi-volts          [read-only]
    .2.<port>.4     fan RPM                           [read-only]
    .2.<port>.5     node state (string)               [read-only]
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.icebox.box import IceBox
from repro.icebox.protocols.base import NetworkService, ProtocolError

__all__ = ["SNMPAgent", "ENTERPRISE_OID"]

ENTERPRISE_OID = "1.3.6.1.4.1.7777"


class SNMPAgent(NetworkService):
    """GET/SET/WALK over the ICE Box enterprise subtree."""

    def __init__(self, box: IceBox, ip_filter=None, *,
                 community: str = "public",
                 write_community: str = "private"):
        super().__init__(box, ip_filter)
        self.community = community
        self.write_community = write_community

    def _split(self, oid: str) -> List[int]:
        if not oid.startswith(ENTERPRISE_OID):
            raise ProtocolError(f"OID {oid} outside enterprise subtree")
        rest = oid[len(ENTERPRISE_OID):].strip(".")
        return [int(x) for x in rest.split(".")] if rest else []

    def get(self, source_ip: str, community: str,
            oid: str) -> Union[int, str]:
        self.check_source(source_ip)
        if community not in (self.community, self.write_community):
            raise ProtocolError("bad community")
        suffix = self._split(oid)
        now = self.box.kernel.now
        if suffix == [1, 0]:
            return f"{self.box.FIRMWARE_VERSION} ({self.box.name})"
        if len(suffix) == 3 and suffix[0] == 2:
            _, port, column = suffix
            node = self.box.node_at(port)
            if node is None:
                raise ProtocolError(f"no such instance: port {port}")
            if column == 1:
                return 1 if self.box.power.outlet(port).on else 2
            if column == 2:
                return int(self.box.temperature_probe(port)
                           .cpu_temperature(now) * 100)
            if column == 3:
                return int(self.box.power_probe(port).voltage(now) * 100)
            if column == 4:
                return int(self.box.temperature_probe(port).fan_rpm(now))
            if column == 5:
                return node.state.value
        raise ProtocolError(f"no such object: {oid}")

    def set(self, source_ip: str, community: str, oid: str,
            value: int) -> None:
        self.check_source(source_ip)
        if community != self.write_community:
            raise ProtocolError("write requires the private community")
        suffix = self._split(oid)
        if len(suffix) == 3 and suffix[0] == 2 and suffix[2] == 1:
            port = suffix[1]
            if self.box.node_at(port) is None:
                raise ProtocolError(f"no such instance: port {port}")
            if value == 1:
                self.box.power.power_on(port)
            elif value == 2:
                self.box.power.power_off(port)
            else:
                raise ProtocolError(f"bad admin-state value {value}")
            return
        raise ProtocolError(f"not writable: {oid}")

    def walk(self, source_ip: str, community: str
             ) -> List[Tuple[str, Union[int, str]]]:
        """Return the whole subtree as (oid, value) pairs."""
        self.check_source(source_ip)
        results: List[Tuple[str, Union[int, str]]] = [
            (f"{ENTERPRISE_OID}.1.0",
             self.get(source_ip, community, f"{ENTERPRISE_OID}.1.0"))]
        for port in range(len(self.box.ports)):
            if self.box.node_at(port) is None:
                continue
            for column in range(1, 6):
                oid = f"{ENTERPRISE_OID}.2.{port}.{column}"
                results.append((oid, self.get(source_ip, community, oid)))
        return results
