"""SIMP — the Serial ICE Management Protocol (§3.4).

Runs over the ICE Box's own serial line, so there is no IP filtering and no
login: physical access is the credential.  Frames are::

    request:  SIMP <seq> <command...>\r\n
    response: SIMP <seq> <OK|ERR>[: payload]\r\n

Sequence numbers let a driver match responses on a shared line.
"""

from __future__ import annotations

from repro.icebox.box import IceBox
from repro.icebox.protocols.base import ProtocolError

__all__ = ["SIMPServer"]


class SIMPServer:
    """Parses SIMP frames and executes them on the box."""

    def __init__(self, box: IceBox):
        self.box = box
        self.frames_handled = 0

    def handle_frame(self, frame: str) -> str:
        frame = frame.rstrip("\r\n")
        parts = frame.split(None, 2)
        if len(parts) < 2 or parts[0] != "SIMP":
            raise ProtocolError(f"bad SIMP frame: {frame!r}")
        seq = parts[1]
        if not seq.isdigit():
            raise ProtocolError(f"bad SIMP sequence number: {seq!r}")
        command = parts[2] if len(parts) == 3 else ""
        result = self.box.execute(command)
        self.frames_handled += 1
        return f"SIMP {seq} {result}\r\n"
