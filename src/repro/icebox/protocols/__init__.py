"""ICE Box access protocols: SIMP, NIMP, telnet, ssh, SNMP (§3.4)."""

from repro.icebox.protocols.base import NetworkService, ProtocolError
from repro.icebox.protocols.nimp import NIMPServer
from repro.icebox.protocols.simp import SIMPServer
from repro.icebox.protocols.snmp import ENTERPRISE_OID, SNMPAgent
from repro.icebox.protocols.ssh import SSHServer, SSHSession
from repro.icebox.protocols.telnet import (
    CONSOLE_PORT_BASE,
    TelnetServer,
    TelnetSession,
)

__all__ = [
    "CONSOLE_PORT_BASE",
    "ENTERPRISE_OID",
    "NIMPServer",
    "NetworkService",
    "ProtocolError",
    "SIMPServer",
    "SNMPAgent",
    "SSHServer",
    "SSHSession",
    "TelnetServer",
    "TelnetSession",
]
