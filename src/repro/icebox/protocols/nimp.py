"""NIMP — the Network ICE Management Protocol (§3.4).

The Ethernet twin of SIMP: same command set, datagram framed, subject to
the box's IP filter.  This is the protocol ClusterWorX itself uses to drive
ICE Boxes.  Frames are::

    request:  NIMP/1.0 <command...>\n
    response: NIMP/1.0 <OK|ERR>[: payload]\n
"""

from __future__ import annotations

from repro.icebox.box import IceBox
from repro.icebox.protocols.base import NetworkService, ProtocolError

__all__ = ["NIMPServer"]


class NIMPServer(NetworkService):
    """Handles NIMP datagrams from management hosts."""

    VERSION = "NIMP/1.0"

    def __init__(self, box: IceBox, ip_filter=None):
        super().__init__(box, ip_filter)
        self.requests_handled = 0

    def handle_request(self, source_ip: str, datagram: str) -> str:
        self.check_source(source_ip)
        datagram = datagram.rstrip("\n")
        prefix, _, command = datagram.partition(" ")
        if prefix != self.VERSION:
            raise ProtocolError(f"bad NIMP version {prefix!r}")
        result = self.box.execute(command)
        self.requests_handled += 1
        return f"{self.VERSION} {result}\n"
