"""SSH access to the ICE Box (§3.4): v1 & v2, key or password auth.

The transport security itself is out of scope (the simulation carries no
real secrets); what is modelled is the *management* behaviour — protocol
version negotiation, key-based authorization, and the same
management-shell/console-port split as telnet.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.icebox.box import IceBox
from repro.icebox.protocols.base import NetworkService, ProtocolError
from repro.icebox.protocols.telnet import CONSOLE_PORT_BASE, TelnetSession

__all__ = ["SSHServer", "SSHSession"]


class SSHSession(TelnetSession):
    """Same session semantics as telnet, plus key auth."""

    def __init__(self, server: "SSHServer", source_ip: str,
                 console_index: Optional[int], protocol_version: int):
        super().__init__(server, source_ip, console_index)
        self.protocol_version = protocol_version

    def login_key(self, username: str, public_key: str) -> bool:
        keys = self.server.authorized_keys.get(username, set())
        self.authenticated = public_key in keys
        return self.authenticated


class SSHServer(NetworkService):
    """Accepts ssh v1/v2 connections; ports as for telnet (22 / 2001+n)."""

    SUPPORTED_VERSIONS = (1, 2)

    def __init__(self, box: IceBox, ip_filter=None, *,
                 credentials: Optional[dict] = None):
        super().__init__(box, ip_filter)
        self.credentials: Dict[str, str] = credentials or {"admin": "icebox"}
        self.authorized_keys: Dict[str, Set[str]] = {}
        self.sessions: List[SSHSession] = []

    def add_key(self, username: str, public_key: str) -> None:
        self.authorized_keys.setdefault(username, set()).add(public_key)

    def connect(self, source_ip: str, tcp_port: int = 22, *,
                protocol_version: int = 2) -> SSHSession:
        self.check_source(source_ip)
        if protocol_version not in self.SUPPORTED_VERSIONS:
            raise ProtocolError(
                f"unsupported ssh protocol version {protocol_version}")
        console_index: Optional[int] = None
        if tcp_port != 22:
            console_index = tcp_port - CONSOLE_PORT_BASE
            if not 0 <= console_index < len(self.box.ports):
                raise ProtocolError(f"no service on tcp port {tcp_port}")
        session = SSHSession(self, source_ip, console_index,
                             protocol_version)
        # TelnetSession.__init__ stored a reference to *its* server class
        # attribute expectations; SSHSession shares them via inheritance.
        self.sessions.append(session)
        return session
