"""ICE Box in-node probes (§3.2): temperature, power, and the reset switch.

The probes read the *hardware* models directly — they work even when the
node's OS is crashed or hung, which is exactly why the paper routes
temperature monitoring through the ICE Box rather than lm_sensors on the
node ("temperature monitoring is usually accomplished using the ICE Box
sensors").
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.node import NodeState, SimulatedNode

__all__ = ["TemperatureProbe", "PowerProbe", "ResetLine"]


class TemperatureProbe:
    """Reads the node's CPU/board temperatures out-of-band."""

    def __init__(self, node: SimulatedNode):
        self.node = node

    def cpu_temperature(self, t: float) -> float:
        return self.node.thermal.temperature(t)

    def board_temperature(self, t: float) -> float:
        # The board sits between ambient and the CPU.
        cpu = self.node.thermal.temperature(t)
        ambient = self.node.thermal.spec.ambient
        return ambient + 0.4 * (cpu - ambient)

    def fan_rpm(self, t: float) -> float:
        load = self.node.cpu.utilization(t) if self.node.is_running() else 0.0
        return self.node.thermal.fan.rpm(load)


class PowerProbe:
    """Detects failing power supplies (§3.2)."""

    def __init__(self, node: SimulatedNode):
        self.node = node

    def voltage(self, t: float) -> float:
        return self.node.psu.probe_voltage(t)

    def watts(self, t: float) -> float:
        return self.node.psu.draw(t)

    def supply_ok(self, t: float) -> bool:
        """False when the PSU is dead or delivering badly out-of-spec power."""
        if self.node.psu.failed:
            return False
        if not self.node.psu.is_on:
            return True  # off is not a fault
        return self.voltage(t) >= self.node.psu.spec.volts * 0.92


class ResetLine:
    """The in-node reset switch: reboot without a full power cycle (§3.2)."""

    def __init__(self, node: SimulatedNode):
        self.node = node

    def assert_reset(self) -> bool:
        """Pulse reset. Returns False if the node cannot respond (no power)."""
        if self.node.state in (NodeState.OFF, NodeState.BURNED):
            return False
        self.node.reset()
        return True
