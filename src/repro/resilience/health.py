r"""Per-node health state machine driven by monitoring staleness.

The paper's monitoring loop exists to *act* (§5.2); acting safely needs
a considered opinion about each node that is stickier than any single
missed packet.  The tracker folds two evidence sources into one state:

* **staleness** — how long since the node's *agent* (tier 1) last
  transmitted.  Sweep echoes deliberately do not count: the server's own
  synthetic updates must not be able to keep a dead node "fresh".
* **hard evidence** — the connectivity sweep's node state (``crashed``,
  ``hung``, ``burned``) and critical EventEngine firings.

States and legal transitions (anything else raises)::

    healthy ──suspect evidence──> suspect ──worse──> down
       ^  ^\___hard evidence____________________________/
       |  \                                             |
       |   \──recovered on its own── down ── playbook ──> recovering
       |                                                   |      |
       +────────────── succeeded ──────────────────────────+      |
    quarantined <──────── playbook exhausted ─────────────────────+
       |
       +── release() ──> healthy     (operator fixed the hardware)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim import SimKernel

__all__ = ["HealthState", "HealthRecord", "HealthTracker",
           "InvalidTransition"]


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DOWN = "down"
    RECOVERING = "recovering"
    QUARANTINED = "quarantined"


#: the legal transition table; everything else is a programming error.
_ALLOWED = {
    HealthState.HEALTHY: {HealthState.SUSPECT, HealthState.DOWN},
    HealthState.SUSPECT: {HealthState.HEALTHY, HealthState.DOWN},
    HealthState.DOWN: {HealthState.RECOVERING, HealthState.HEALTHY},
    HealthState.RECOVERING: {HealthState.HEALTHY,
                             HealthState.QUARANTINED},
    HealthState.QUARANTINED: {HealthState.HEALTHY},
}


class InvalidTransition(ValueError):
    """Raised on a transition the table above does not allow."""


@dataclass
class HealthRecord:
    """One node's current health plus its full transition history."""

    hostname: str
    state: HealthState = HealthState.HEALTHY
    since: float = 0.0
    #: (time, old state, new state, reason) — newest last.
    history: List[Tuple[float, HealthState, HealthState, str]] = \
        field(default_factory=list)

    def transitions_to(self, state: HealthState, *,
                       since: float = 0.0) -> List[float]:
        """Times at which this node entered ``state`` (>= ``since``)."""
        return [t for t, _old, new, _r in self.history
                if new is state and t >= since]


class HealthTracker:
    """The health state machine over every tracked node.

    :meth:`evaluate` is fed from the server's connectivity sweep with
    the agent staleness age and the sweep's own reachability verdict;
    :meth:`note_event` is fed from EventEngine firings.  Transition
    listeners (``fn(hostname, old, new, reason)``) let the recovery
    orchestrator react the instant a node goes ``down`` without the
    tracker knowing the orchestrator exists.
    """

    def __init__(self, kernel: SimKernel, *,
                 suspect_after: float = 30.0,
                 down_after: float = 60.0):
        if suspect_after <= 0 or down_after <= suspect_after:
            raise ValueError("need 0 < suspect_after < down_after")
        self.kernel = kernel
        self.suspect_after = suspect_after
        self.down_after = down_after
        self._records: Dict[str, HealthRecord] = {}
        self._listeners: List[Callable[[str, HealthState, HealthState,
                                        str], None]] = []

    # -- introspection ---------------------------------------------------
    def record(self, hostname: str) -> Optional[HealthRecord]:
        return self._records.get(hostname)

    def state(self, hostname: str) -> HealthState:
        record = self._records.get(hostname)
        return record.state if record is not None else HealthState.HEALTHY

    def nodes_in(self, state: HealthState) -> List[str]:
        return sorted(h for h, r in self._records.items()
                      if r.state is state)

    def counts(self) -> Dict[str, int]:
        out = {state.value: 0 for state in HealthState}
        for record in self._records.values():
            out[record.state.value] += 1
        return out

    def add_listener(self, listener: Callable[[str, HealthState,
                                               HealthState, str], None]
                     ) -> None:
        self._listeners.append(listener)

    def forget(self, hostname: str) -> None:
        """Drop the node's record entirely — the hot-remove path."""
        self._records.pop(hostname, None)

    # -- transitions -----------------------------------------------------
    def _transition(self, hostname: str, new: HealthState,
                    reason: str) -> None:
        record = self._records.get(hostname)
        if record is None:
            record = self._records[hostname] = HealthRecord(
                hostname=hostname, since=self.kernel.now)
        old = record.state
        if new is old:
            return
        if new not in _ALLOWED[old]:
            raise InvalidTransition(
                f"{hostname}: {old.value} -> {new.value} ({reason})")
        now = self.kernel.now
        record.state = new
        record.since = now
        record.history.append((now, old, new, reason))
        for listener in list(self._listeners):
            listener(hostname, old, new, reason)

    def mark_suspect(self, hostname: str, reason: str) -> None:
        self._transition(hostname, HealthState.SUSPECT, reason)

    def mark_down(self, hostname: str, reason: str) -> None:
        self._transition(hostname, HealthState.DOWN, reason)

    def mark_recovering(self, hostname: str, reason: str) -> None:
        self._transition(hostname, HealthState.RECOVERING, reason)

    def mark_healthy(self, hostname: str, reason: str) -> None:
        self._transition(hostname, HealthState.HEALTHY, reason)

    def mark_quarantined(self, hostname: str, reason: str) -> None:
        self._transition(hostname, HealthState.QUARANTINED, reason)

    def release(self, hostname: str, reason: str = "operator release"
                ) -> None:
        """Quarantined -> healthy: the operator fixed the hardware."""
        self._transition(hostname, HealthState.HEALTHY, reason)

    # -- evidence feeds --------------------------------------------------
    def evaluate(self, hostname: str, *, age: float, reachable: bool,
                 node_state: str) -> HealthState:
        """Fold one sweep observation into the state machine.

        ``age`` is the agent staleness (seconds since the last tier-1
        update), ``reachable`` the sweep's UDP-echo verdict and
        ``node_state`` the observed hardware state string.
        """
        state = self.state(hostname)
        if state in (HealthState.RECOVERING, HealthState.QUARANTINED):
            # The orchestrator owns the node until it hands it back.
            return state
        hard_down = node_state in ("crashed", "hung", "burned")
        if state is HealthState.HEALTHY:
            if hard_down:
                self.mark_down(hostname, f"node_state={node_state}")
            elif not reachable or age >= self.suspect_after:
                self.mark_suspect(
                    hostname, f"stale {age:.0f}s, reachable={reachable}")
        elif state is HealthState.SUSPECT:
            if hard_down:
                self.mark_down(hostname, f"node_state={node_state}")
            elif age >= self.down_after:
                self.mark_down(hostname, f"agent silent {age:.0f}s")
            elif reachable and age < self.suspect_after:
                self.mark_healthy(hostname, "agent fresh again")
        elif state is HealthState.DOWN:
            if (not hard_down and reachable
                    and age < self.suspect_after
                    and node_state == "up"):
                self.mark_healthy(hostname, "recovered unassisted")
        return self.state(hostname)

    def note_event(self, hostname: str, rule_name: str,
                   severity: str) -> None:
        """An EventEngine rule fired for this node; critical firings
        make a healthy node suspect (the playbook starts from evidence,
        not from a timer)."""
        if severity != "critical":
            return
        if self.state(hostname) is HealthState.HEALTHY:
            self.mark_suspect(hostname, f"event:{rule_name}")
