"""Retry and circuit-breaker policy shared by every recovery channel.

Two small mechanisms keep the self-healing loop from making a bad
situation worse:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter (drawn from a named sim-RNG stream, never the
  wall clock), so a cluster-wide incident does not resynchronize 400
  playbooks into thundering-herd retry waves;
* :class:`CircuitBreaker` — per-channel failure accounting on simulated
  time.  A dead ICE Box management protocol stops being hammered after
  ``failure_threshold`` consecutive failures; the orchestrator then
  *degrades to the next escalation rung* instead of burning its retry
  budget against a black hole.  After ``reset_timeout`` the breaker
  goes half-open and admits exactly one trial call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["RetryPolicy", "CircuitBreaker",
           "CLOSED", "OPEN", "HALF_OPEN"]

#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff + jitter.

    ``delay(attempt, rng)`` returns the sleep before attempt
    ``attempt + 1`` (i.e. after the ``attempt``-th failure, 1-based):
    ``backoff * multiplier**(attempt-1)`` capped at ``max_backoff``,
    stretched by a uniform ``[0, jitter]`` fraction drawn from ``rng``.
    """

    max_attempts: int = 2
    timeout: float = 30.0
    backoff: float = 5.0
    multiplier: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before the next try, after failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff * self.multiplier ** (attempt - 1)
        base = min(base, self.max_backoff)
        if rng is not None and self.jitter > 0:
            base *= 1.0 + float(rng.uniform(0.0, self.jitter))
        return base


class CircuitBreaker:
    """Consecutive-failure breaker on simulated time.

    closed --``failure_threshold`` consecutive failures--> open
    open   --``reset_timeout`` elapsed--> half-open (one trial admitted)
    half-open --success--> closed;  --failure--> open (timer restarts)

    Callers ask :meth:`allow` before using the channel and report the
    outcome with :meth:`record_success`/:meth:`record_failure`; the
    breaker itself never sleeps or schedules anything.
    """

    def __init__(self, name: str, *, failure_threshold: int = 3,
                 reset_timeout: float = 300.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._half_open = False
        #: (time, old state, new state) audit trail.
        self.transitions: List[Tuple[float, str, str]] = []

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return CLOSED
        return HALF_OPEN if self._half_open else OPEN

    def _move(self, now: float, new: str) -> None:
        old = self.state
        if new == CLOSED:
            self.opened_at = None
            self._half_open = False
            self.failures = 0
        elif new == OPEN:
            self.opened_at = now
            self._half_open = False
        else:  # HALF_OPEN
            self._half_open = True
        if old != new:
            self.transitions.append((now, old, new))

    def allow(self, now: float) -> bool:
        """May the caller use the channel right now?

        While open, returns False until ``reset_timeout`` has elapsed;
        the call that finds the timeout expired flips to half-open and
        is admitted as the single trial.
        """
        if self.opened_at is None:
            return True
        if self._half_open:
            # One trial is already in flight (or was never reported);
            # admit it again rather than deadlocking the channel.
            return True
        if now - self.opened_at >= self.reset_timeout:
            self._move(now, HALF_OPEN)
            return True
        return False

    def record_success(self, now: float) -> None:
        self._move(now, CLOSED)

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self._half_open or self.failures >= self.failure_threshold:
            self._move(now, OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CircuitBreaker {self.name} {self.state} "
                f"failures={self.failures}>")
