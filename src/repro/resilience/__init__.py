"""repro.resilience — the self-healing node lifecycle.

The closed loop the paper's monitoring exists to drive (§5.2 "corrective
action", §3 ICE Box control, §4 recloning), split into four pieces:

* :mod:`~repro.resilience.health` — per-node health state machine
  (``healthy -> suspect -> down -> recovering -> healthy|quarantined``)
  fed by monitoring staleness, sweep verdicts and event firings;
* :mod:`~repro.resilience.policy` — the shared :class:`RetryPolicy`
  (bounded retries, exponential backoff, deterministic sim-RNG jitter)
  and per-channel :class:`CircuitBreaker`;
* :mod:`~repro.resilience.playbook` /
  :mod:`~repro.resilience.orchestrator` — the escalation ladder (probe,
  ICE reset, power cycle, reclone, quarantine) and the supervisor that
  climbs it on the SimKernel through injected channels;
* :mod:`~repro.resilience.chaos` — fault campaigns over a live cluster,
  scored into a deterministic :class:`CampaignReport` (detection
  latency, MTTR, rung reached, recovery rate).

This package sits at layer 3 of the layer DAG (a control-plane service,
like :mod:`repro.events` and :mod:`repro.remote`); the tier-2 server in
:mod:`repro.core` wires it to the real subsystems.
"""

from repro.resilience.chaos import (CampaignReport, ChaosCampaign,
                                    FaultOutcome)
from repro.resilience.health import (HealthRecord, HealthState,
                                     HealthTracker, InvalidTransition)
from repro.resilience.orchestrator import (RecoveryChannels,
                                           RecoveryOrchestrator,
                                           RecoveryRecord, RungAttempt)
from repro.resilience.playbook import DEFAULT_PLAYBOOK, RUNG_NAMES, Rung
from repro.resilience.policy import CircuitBreaker, RetryPolicy

__all__ = [
    "CampaignReport", "ChaosCampaign", "FaultOutcome",
    "HealthRecord", "HealthState", "HealthTracker", "InvalidTransition",
    "RecoveryChannels", "RecoveryOrchestrator", "RecoveryRecord",
    "RungAttempt", "DEFAULT_PLAYBOOK", "RUNG_NAMES", "Rung",
    "CircuitBreaker", "RetryPolicy",
]
