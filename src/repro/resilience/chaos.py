"""Chaos campaigns: draw faults against a live cluster, measure MTTR.

A :class:`ChaosCampaign` takes an assembled ``ClusterWorX`` facade (duck
typed — this module never imports :mod:`repro.core`), draws a fault plan
from the dedicated ``"chaos"`` RNG stream (distinct victims, mixed
kinds, injection times spread over ``horizon``), runs the simulation
while the self-healing loop works, and distills the result into a typed
:class:`CampaignReport`:

* per fault — detection latency (injection -> marked ``down``), recovery
  latency (detection -> healthy/quarantined, i.e. the per-fault TTR),
  the escalation rung that ended the playbook, and the outcome;
* aggregate — outcome counts, per-kind breakdown, mean/max detection
  latency and MTTR.

``render()`` is a pure function of the simulation results, so two runs
with the same seed produce byte-identical reports — the determinism
gate ``bench_e15`` and ``make chaos`` both assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hardware.faults import FaultKind
from repro.hardware.workload import WorkloadSegment
from repro.resilience.health import HealthState

__all__ = ["ChaosCampaign", "CampaignReport", "FaultOutcome",
           "ControlFaultOutcome"]

#: outcome labels
RECOVERED = "recovered"
QUARANTINED = "quarantined"
BENIGN = "benign"          # fault never took the node down
UNRESOLVED = "unresolved"  # campaign ended mid-playbook

#: control-plane outcome labels (shard/gateway faults)
FAILED_OVER = "failed-over"    # dead shard drained to survivors
RODE_THROUGH = "rode-through"  # degraded transiently, recovered in place


@dataclass
class FaultOutcome:
    """One injected fault and what the self-healing loop did about it."""

    node: str
    kind: str
    injected_at: float
    detected_at: Optional[float] = None
    resolved_at: Optional[float] = None
    rung: str = ""
    outcome: str = BENIGN

    @property
    def detection_latency(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def recovery_latency(self) -> Optional[float]:
        """Detection -> resolution: the per-fault time-to-repair."""
        if self.detected_at is None or self.resolved_at is None:
            return None
        return self.resolved_at - self.detected_at


@dataclass
class ControlFaultOutcome:
    """One *control-plane* fault (shard kill/hang/slow, link
    partition, gateway publication stall) and how the self-healing
    control plane absorbed it.

    Lives here — not in :mod:`repro.faults` — so the report type stays
    at the resilience layer; the fault plane (which imports downward
    into this module) fills the columns in.
    """

    target: str                 # "shard1", "gateway"
    kind: str                   # repro.faults kind label
    injected_at: float
    duration: float = 0.0
    shard: Optional[int] = None
    detected_at: Optional[float] = None      # first suspect/dead mark
    failed_over_at: Optional[float] = None   # drain-on-death complete
    nodes_moved: int = 0
    updates_dropped: int = 0
    outcome: str = BENIGN

    @property
    def detection_latency(self) -> Optional[float]:
        """Injection -> the monitor marking the shard suspect/dead."""
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def redistribute_latency(self) -> Optional[float]:
        """Detection -> every node re-owned by a survivor."""
        if self.detected_at is None or self.failed_over_at is None:
            return None
        return self.failed_over_at - self.detected_at


@dataclass
class CampaignReport:
    """Typed outcome of one chaos campaign."""

    seed: int
    nodes: int
    horizon: float
    settle: float
    faults: List[FaultOutcome] = field(default_factory=list)
    #: control-plane faults (shard kills etc.) — empty for the classic
    #: node-only campaigns, so their reports stay byte-identical.
    control_faults: List[ControlFaultOutcome] = field(default_factory=list)
    notifications: int = 0
    errors: int = 0

    # -- aggregates ------------------------------------------------------
    def outcome_counts(self) -> Dict[str, int]:
        out = {RECOVERED: 0, QUARANTINED: 0, BENIGN: 0, UNRESOLVED: 0}
        for fault in self.faults:
            out[fault.outcome] = out.get(fault.outcome, 0) + 1
        return out

    def by_kind(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for fault in self.faults:
            row = out.setdefault(fault.kind, {})
            row[fault.outcome] = row.get(fault.outcome, 0) + 1
        return out

    def _latencies(self, attr: str) -> List[float]:
        return [value for fault in self.faults
                if (value := getattr(fault, attr)) is not None]

    @property
    def mean_detection_latency(self) -> float:
        values = self._latencies("detection_latency")
        return sum(values) / len(values) if values else 0.0

    @property
    def mttr(self) -> float:
        """Mean time to repair over the *recovered* faults."""
        values = [f.recovery_latency for f in self.faults
                  if f.outcome == RECOVERED
                  and f.recovery_latency is not None]
        return sum(values) / len(values) if values else 0.0

    def recovery_rate(self, kinds: Optional[Sequence[str]] = None
                      ) -> float:
        """Recovered fraction of the *detected* faults (optionally
        restricted to ``kinds``)."""
        detected = [f for f in self.faults
                    if f.detected_at is not None
                    and (kinds is None or f.kind in kinds)]
        if not detected:
            return 1.0
        recovered = sum(1 for f in detected if f.outcome == RECOVERED)
        return recovered / len(detected)

    @property
    def ok(self) -> bool:
        """Every fault reached a terminal outcome, with no defused
        playbook exceptions left behind."""
        return (self.errors == 0
                and not any(f.outcome == UNRESOLVED for f in self.faults)
                and not any(f.outcome == UNRESOLVED
                            for f in self.control_faults))

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        """Deterministic operator-facing text (byte-stable per seed)."""
        lines = [
            f"chaos campaign: {len(self.faults)} faults over "
            f"{self.nodes} nodes (seed {self.seed}, horizon "
            f"{self.horizon:.0f}s + settle {self.settle:.0f}s)",
            f"{'T_INJECT':>9} {'NODE':<14} {'KIND':<13} {'DETECT':>8} "
            f"{'REPAIR':>8} {'RUNG':<12} OUTCOME",
        ]
        for fault in self.faults:
            detect = (f"{fault.detection_latency:8.1f}"
                      if fault.detection_latency is not None else
                      f"{'-':>8}")
            repair = (f"{fault.recovery_latency:8.1f}"
                      if fault.recovery_latency is not None else
                      f"{'-':>8}")
            lines.append(
                f"{fault.injected_at:9.1f} {fault.node:<14} "
                f"{fault.kind:<13} {detect} {repair} "
                f"{fault.rung or '-':<12} {fault.outcome}")
        counts = self.outcome_counts()
        lines.append(
            "outcomes: " + " ".join(
                f"{name}={counts[name]}"
                for name in (RECOVERED, QUARANTINED, BENIGN, UNRESOLVED)))
        for kind in sorted(self.by_kind()):
            row = self.by_kind()[kind]
            cells = " ".join(f"{name}={n}"
                             for name, n in sorted(row.items()))
            lines.append(f"  {kind:<13} {cells}")
        lines.append(
            f"detection latency {self.mean_detection_latency:.1f}s mean | "
            f"MTTR {self.mttr:.1f}s | recovery rate "
            f"{self.recovery_rate() * 100:.1f}% of detected | "
            f"{self.notifications} quarantine notification(s) | "
            f"{self.errors} defused error(s)")
        if self.control_faults:
            lines.append(
                f"control-plane faults: {len(self.control_faults)}")
            lines.append(
                f"{'T_INJECT':>9} {'TARGET':<14} {'KIND':<13} "
                f"{'DETECT':>8} {'REDIST':>8} {'MOVED':>6} "
                f"{'DROPPED':>8} OUTCOME")
            for fault in self.control_faults:
                detect = (f"{fault.detection_latency:8.1f}"
                          if fault.detection_latency is not None else
                          f"{'-':>8}")
                redist = (f"{fault.redistribute_latency:8.1f}"
                          if fault.redistribute_latency is not None else
                          f"{'-':>8}")
                lines.append(
                    f"{fault.injected_at:9.1f} {fault.target:<14} "
                    f"{fault.kind:<13} {detect} {redist} "
                    f"{fault.nodes_moved:6d} {fault.updates_dropped:8d} "
                    f"{fault.outcome}")
        return "\n".join(lines)


class ChaosCampaign:
    """Plan, run and score one fault campaign against a facade."""

    def __init__(self, cwx, *, n_faults: int = 50,
                 kinds: Sequence[str] = FaultKind.ALL,
                 start: float = 60.0, horizon: float = 900.0,
                 settle: float = 2700.0, workload_cpu: float = 0.7,
                 control_plane=None):
        if n_faults < 0 or (n_faults < 1 and control_plane is None):
            raise ValueError("n_faults must be >= 1")
        if n_faults > len(cwx.cluster.hostnames):
            raise ValueError("need at least one node per fault "
                             "(victims are distinct)")
        self.cwx = cwx
        self.n_faults = n_faults
        self.kinds = tuple(kinds)
        self.start = start
        self.horizon = horizon
        self.settle = settle
        self.workload_cpu = workload_cpu
        #: duck-typed hook (``plan(rng, t0, start, horizon)`` /
        #: ``score() -> List[ControlFaultOutcome]``) — the concrete
        #: implementation lives upstack in :mod:`repro.faults`, so this
        #: layer never imports it.
        self.control_plane = control_plane
        self.plan: List[FaultOutcome] = []

    # -- execution -------------------------------------------------------
    def execute(self) -> CampaignReport:
        cwx = self.cwx
        cwx.server.self_healing = True
        rng = cwx.streams("chaos")
        hosts = sorted(cwx.cluster.hostnames)
        end = cwx.kernel.now + self.start + self.horizon + self.settle

        # Realistic steady load: hot CPUs are what turns a dead fan
        # into a burned board (the paper's canonical scenario).
        if self.workload_cpu > 0:
            for node in cwx.cluster.nodes:
                node.workload.add(WorkloadSegment(
                    start=cwx.kernel.now, duration=end + 3600.0,
                    cpu=self.workload_cpu))
        cwx.start()

        # Draw the plan: distinct victims, mixed kinds, spread times.
        t0 = cwx.kernel.now
        victims = rng.choice(len(hosts), size=self.n_faults,
                             replace=False)
        kind_idx = rng.integers(0, len(self.kinds), size=self.n_faults)
        offsets = rng.uniform(0.0, self.horizon, size=self.n_faults)
        plan = sorted(
            (float(t0 + self.start + offset), hosts[int(victim)],
             self.kinds[int(k)])
            for offset, victim, k in zip(offsets, victims, kind_idx))
        injector = cwx.cluster.faults
        for at, hostname, kind in plan:
            injector.schedule(cwx.cluster.node(hostname), kind, at)
            self.plan.append(FaultOutcome(node=hostname, kind=kind,
                                          injected_at=at))

        # Control-plane faults draw *after* the node plan, so adding a
        # control plan never perturbs the node-fault schedule for a
        # given seed.
        if self.control_plane is not None:
            self.control_plane.plan(rng, t0, self.start, self.horizon)

        cwx.run(self.start + self.horizon + self.settle)
        return self.score()

    # -- scoring ---------------------------------------------------------
    def score(self) -> CampaignReport:
        """Distill tracker histories + playbook records into the report."""
        cwx = self.cwx
        tracker = cwx.server.health
        orchestrator = cwx.server.recovery
        report = CampaignReport(
            seed=cwx.streams.seed, nodes=len(cwx.cluster.hostnames),
            horizon=self.horizon, settle=self.settle,
            notifications=len(orchestrator.notifications),
            errors=len(orchestrator.errors))
        for fault in self.plan:
            record = tracker.record(fault.node)
            if record is not None:
                downs = record.transitions_to(
                    HealthState.DOWN, since=fault.injected_at)
                if downs:
                    fault.detected_at = downs[0]
                    healed = record.transitions_to(
                        HealthState.HEALTHY, since=fault.detected_at)
                    parked = record.transitions_to(
                        HealthState.QUARANTINED, since=fault.detected_at)
                    if parked and (not healed or parked[0] < healed[0]):
                        fault.resolved_at = parked[0]
                        fault.outcome = QUARANTINED
                    elif healed:
                        fault.resolved_at = healed[0]
                        fault.outcome = RECOVERED
                    else:
                        fault.outcome = UNRESOLVED
            if fault.detected_at is not None:
                playbook = orchestrator.record_for(fault.node)
                if playbook is not None:
                    fault.rung = playbook.rung_reached
            report.faults.append(fault)
        if self.control_plane is not None:
            report.control_faults.extend(self.control_plane.score())
        return report
