"""The recovery orchestrator: escalating playbooks on the SimKernel.

One :class:`RecoveryOrchestrator` supervises every unhealthy node.  When
the health tracker marks a node ``down``, :meth:`~RecoveryOrchestrator.
recover` spawns a *playbook* process that climbs the escalation ladder
(:data:`~repro.resilience.playbook.DEFAULT_PLAYBOOK`) — probe, ICE Box
reset, power cycle, reclone, quarantine — with every rung governed by
the shared :class:`~repro.resilience.policy.RetryPolicy` and a
per-channel :class:`~repro.resilience.policy.CircuitBreaker`.

The orchestrator talks to the rest of the framework exclusively through
:class:`RecoveryChannels` — a bundle of callables the ClusterWorX server
supplies — so this module depends on nothing above the hardware layer
and cannot create an import cycle with :mod:`repro.core`.

A playbook never lets an exception escape into the kernel: channel
failures are recorded on :attr:`RecoveryOrchestrator.errors` and count
as rung failures, exactly like the fan-out worker's contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.hardware.node import NodeState
from repro.resilience.health import HealthState, HealthTracker
from repro.resilience.playbook import DEFAULT_PLAYBOOK, Rung
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.sim import Interrupt, ProcessKilled, SimKernel

__all__ = ["RecoveryChannels", "RecoveryOrchestrator", "RecoveryRecord",
           "RungAttempt"]


@dataclass
class RecoveryChannels:
    """Everything a playbook may do to a node, as injected callables.

    ``probe``/``reclone`` may return a generator (driven on the kernel);
    the others return a protocol string (``OK...``/``ERR...``), a bool,
    or ``None``.  Unset channels make their rung report "unavailable"
    and the ladder degrades to the next rung.
    """

    #: hostname -> SimulatedNode (raises KeyError for unknown hosts).
    node: Callable[[str], object]
    probe: Optional[Callable[[str], object]] = None
    ice_reset: Optional[Callable[[str], object]] = None
    power_cycle: Optional[Callable[[str], object]] = None
    reclone: Optional[Callable[[str], object]] = None
    #: drain(hostname, reason) — detach the node from the resource manager.
    drain: Optional[Callable[[str, str], object]] = None
    #: notify(hostname, reason) — page the operator (smart notification).
    notify: Optional[Callable[[str, str], object]] = None
    #: (channel class, hostname) -> breaker scope key, or None for "no
    #: breaker".  Lets icebox rungs share one breaker per physical box.
    breaker_scope: Optional[Callable[[str, str], Optional[str]]] = None


@dataclass
class RungAttempt:
    """One attempt of one rung (including skips), for the audit trail."""

    rung: str
    attempt: int
    started_at: float
    finished_at: float
    ok: bool
    note: str = ""


@dataclass
class RecoveryRecord:
    """The full story of one playbook execution."""

    hostname: str
    reason: str
    started_at: float
    finished_at: Optional[float] = None
    #: active | recovered | quarantined | aborted
    outcome: str = "active"
    #: rung that ended the playbook ("" while still active/aborted).
    rung_reached: str = ""
    attempts: List[RungAttempt] = field(default_factory=list)


def _normalize(value: object) -> Tuple[bool, str]:
    """Map a channel return value to (ok, note)."""
    if isinstance(value, str):
        return value.upper().startswith("OK"), value
    if isinstance(value, tuple):
        ok, note = value
        return bool(ok), str(note)
    return bool(value), ""


def _transport_failure(note: str) -> bool:
    """Did the *channel itself* fail (vs. an application-level refusal)?

    Only transport failures feed the circuit breaker: a healthy ICE Box
    answering ``ERR: node has no power`` for a burned board proves the
    protocol path works, and must not open the breaker for every other
    node behind the same box.
    """
    low = note.lower()
    return "no response" in low or low.startswith("timed out")


class RecoveryOrchestrator:
    """Supervises per-node recovery playbooks."""

    def __init__(self, kernel: SimKernel, tracker: HealthTracker,
                 channels: RecoveryChannels, *, rng=None,
                 policy: Optional[RetryPolicy] = None,
                 playbook: Sequence[Rung] = DEFAULT_PLAYBOOK,
                 verify_timeout: float = 180.0,
                 breaker_threshold: int = 3,
                 breaker_reset: float = 600.0):
        self.kernel = kernel
        self.tracker = tracker
        self.channels = channels
        self.rng = rng
        self.policy = policy if policy is not None else RetryPolicy()
        self.playbook = tuple(playbook)
        self.verify_timeout = verify_timeout
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.records: List[RecoveryRecord] = []
        #: (time, hostname, reason) — one entry per quarantine page.
        self.notifications: List[Tuple[float, str, str]] = []
        #: (time, hostname, rung, error) — channel exceptions, defused.
        self.errors: List[Tuple[float, str, str, str]] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._active: Dict[str, object] = {}

    # -- introspection ---------------------------------------------------
    @property
    def active(self) -> List[str]:
        return sorted(self._active)

    def breaker(self, scope: str) -> CircuitBreaker:
        breaker = self._breakers.get(scope)
        if breaker is None:
            breaker = self._breakers[scope] = CircuitBreaker(
                scope, failure_threshold=self.breaker_threshold,
                reset_timeout=self.breaker_reset)
        return breaker

    def record_for(self, hostname: str) -> Optional[RecoveryRecord]:
        """The newest playbook record for ``hostname``, if any."""
        for record in reversed(self.records):
            if record.hostname == hostname:
                return record
        return None

    # -- entry points ----------------------------------------------------
    def recover(self, hostname: str,
                reason: str = "marked down") -> Optional[RecoveryRecord]:
        """Start (or join) the recovery playbook for ``hostname``."""
        if hostname in self._active:
            return self.record_for(hostname)
        state = self.tracker.state(hostname)
        if state is HealthState.QUARANTINED:
            return None
        if state is not HealthState.DOWN:
            # Manual invocation: force the evidence through the machine.
            self.tracker.mark_down(hostname, f"recover(): {reason}")
        self.tracker.mark_recovering(hostname, reason)
        record = RecoveryRecord(hostname=hostname, reason=reason,
                                started_at=self.kernel.now)
        self.records.append(record)
        self._active[hostname] = self.kernel.process(
            self._playbook(hostname, record),
            name=f"playbook:{hostname}")
        return record

    def forget(self, hostname: str) -> None:
        """Abort any active playbook for a hot-removed node.  Safe to
        call at any time, including mid-rung."""
        proc = self._active.pop(hostname, None)
        if proc is not None and proc.is_alive:
            proc.kill()

    # -- the playbook process -------------------------------------------
    def _playbook(self, hostname: str, record: RecoveryRecord):
        try:
            for rung in self.playbook:
                if rung.terminal:
                    self._quarantine(hostname, record)
                    return
                done = yield from self._run_rung(rung, hostname, record)
                if done:
                    record.outcome = "recovered"
                    record.rung_reached = rung.name
                    self.tracker.mark_healthy(
                        hostname, f"recovered via {rung.name}")
                    return
            # Custom ladder without a terminal rung: everything failed.
            self._quarantine(hostname, record)
        finally:
            self._active.pop(hostname, None)
            record.finished_at = self.kernel.now
            if record.outcome == "active":
                record.outcome = "aborted"

    def _run_rung(self, rung: Rung, hostname: str,
                  record: RecoveryRecord):
        """Climb one rung: breaker gate, bounded retries, verification.
        Returns True when the node is considered recovered."""
        now = self.kernel.now
        fn = getattr(self.channels, rung.name, None)
        if fn is None:
            record.attempts.append(RungAttempt(
                rung.name, 0, now, now, False, "channel unavailable"))
            return False
        scope = self._scope(rung, hostname)
        breaker = self.breaker(scope) if scope is not None else None
        if breaker is not None and not breaker.allow(now):
            record.attempts.append(RungAttempt(
                rung.name, 0, now, now, False,
                f"breaker open: {scope}"))
            return False
        ok = False
        for attempt in range(1, self.policy.max_attempts + 1):
            started = self.kernel.now
            ok, note = yield from self._attempt(rung, hostname)
            record.attempts.append(RungAttempt(
                rung.name, attempt, started, self.kernel.now, ok, note))
            if breaker is not None:
                # An application-level refusal still proves the channel
                # transport works; only non-responses trip the breaker.
                if ok or not _transport_failure(note):
                    breaker.record_success(self.kernel.now)
                else:
                    breaker.record_failure(self.kernel.now)
            if ok:
                break
            if breaker is not None \
                    and not breaker.allow(self.kernel.now):
                break  # channel declared dead: degrade, don't hammer
            if attempt < self.policy.max_attempts:
                yield self.kernel.timeout(
                    self.policy.delay(attempt, self.rng))
        if ok and rung.verify:
            verified = yield from self._verify(hostname)
            if not verified:
                record.attempts.append(RungAttempt(
                    rung.name, 0, self.kernel.now, self.kernel.now,
                    False, "verify: node did not come back up"))
            ok = verified
        return ok

    def _scope(self, rung: Rung, hostname: str) -> Optional[str]:
        if self.channels.breaker_scope is not None:
            return self.channels.breaker_scope(rung.channel, hostname)
        # Default policy: breakers guard the shared-device channels.
        return rung.channel if rung.channel in ("icebox", "imaging") \
            else None

    def _attempt(self, rung: Rung, hostname: str):
        """One timed attempt of a rung's channel; (ok, note)."""
        timeout = rung.timeout if rung.timeout is not None \
            else self.policy.timeout
        proc = self.kernel.process(
            self._execute(rung, hostname),
            name=f"recover:{rung.name}:{hostname}")
        fired = yield self.kernel.any_of(
            [proc, self.kernel.timeout(timeout)])
        if proc not in fired:
            proc.kill()
            return False, f"timed out after {timeout:g}s"
        return _normalize(proc.value)

    def _execute(self, rung: Rung, hostname: str):
        """Drive one channel call; exceptions become rung failures."""
        fn = getattr(self.channels, rung.name)
        try:
            value = fn(hostname)
            if hasattr(value, "throw"):  # generator channel: drive it
                value = yield from value
        except (Interrupt, ProcessKilled):
            raise
        except Exception as exc:  # channel code is arbitrary
            self.errors.append((self.kernel.now, hostname, rung.name,
                                repr(exc)))
            return False
        return value

    def _verify(self, hostname: str):
        """Wait for the node to actually reach ``up`` again."""
        try:
            node = self.channels.node(hostname)
        except Exception as exc:  # hot-removed mid-playbook
            self.errors.append((self.kernel.now, hostname, "verify",
                                repr(exc)))
            return False
        waiter = node.wait_state(NodeState.UP)
        fired = yield self.kernel.any_of(
            [waiter, self.kernel.timeout(self.verify_timeout)])
        return waiter in fired

    def _quarantine(self, hostname: str, record: RecoveryRecord) -> None:
        """Terminal rung: drain, page the operator exactly once, park."""
        now = self.kernel.now
        reason = (f"playbook exhausted after "
                  f"{len(record.attempts)} attempt(s)")
        if self.channels.drain is not None:
            try:
                self.channels.drain(hostname, reason)
            except Exception as exc:  # drain must not block quarantine
                self.errors.append((now, hostname, "drain", repr(exc)))
        if self.channels.notify is not None:
            try:
                self.channels.notify(hostname, reason)
            except Exception as exc:  # notify must not block quarantine
                self.errors.append((now, hostname, "notify", repr(exc)))
        self.notifications.append((now, hostname, reason))
        record.outcome = "quarantined"
        record.rung_reached = "quarantine"
        self.tracker.mark_quarantined(hostname, reason)
