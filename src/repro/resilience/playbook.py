"""The escalation ladder: which channels to try, in which order.

Each rung names a :class:`~repro.resilience.orchestrator.
RecoveryChannels` callable plus the policy knobs the orchestrator
applies around it.  The default ladder follows the paper's toolbox
bottom-up — cheapest, least-destructive first:

======== ============ ===========================================
rung     channel      what it does
======== ============ ===========================================
probe    remote       in-band ping via the TaskEngine fan-out
ice_reset icebox      hardware reset line through the ICE Box
power_cycle icebox    outlet power cycle through the ICE Box
reclone  imaging      multicast reclone + reboot (§4)
quarantine quarantine drain from SLURM + smart-notification email
======== ============ ===========================================

``verify`` rungs are only credited once the node actually reaches the
``up`` state again within the orchestrator's verify window — an ICE Box
happily reports ``OK`` for a power cycle of a board whose CPU burned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["Rung", "DEFAULT_PLAYBOOK", "RUNG_NAMES"]


@dataclass(frozen=True)
class Rung:
    """One escalation step of a recovery playbook."""

    name: str       #: RecoveryChannels attribute to invoke
    channel: str    #: breaker channel class ("remote"/"icebox"/...)
    verify: bool    #: require the node back ``up`` before crediting
    terminal: bool = False  #: rung ends the playbook regardless
    #: per-attempt timeout override; None uses the RetryPolicy's.  A
    #: reclone legitimately takes minutes while a probe takes seconds.
    timeout: Optional[float] = None


#: the standard ladder, least destructive first.
DEFAULT_PLAYBOOK: Tuple[Rung, ...] = (
    Rung("probe", "remote", verify=False),
    Rung("ice_reset", "icebox", verify=True),
    Rung("power_cycle", "icebox", verify=True),
    Rung("reclone", "imaging", verify=True, timeout=1800.0),
    Rung("quarantine", "quarantine", verify=False, terminal=True),
)

RUNG_NAMES: List[str] = [rung.name for rung in DEFAULT_PLAYBOOK]
