"""The discrete-event loop: events, timeouts and generator processes.

The kernel buckets scheduled events by exact fire time: a timer wheel
(``dict`` keyed by time, one FIFO pair per distinct instant) plus a heap
of *distinct* pending times.  Cluster workloads are dominated by
fixed-interval timeouts — thousands of agents, sweeps and message
deliveries landing on the same instant — so scheduling one of them is an
O(1) append to an existing bucket instead of an O(log n) heap push per
event; the heap only orders the (few) distinct times.  Irregular events
simply occupy single-entry buckets, so nothing needs to classify them.

Within one instant the processing order is exactly the old heap order:
all URGENT entries before all NORMAL entries, FIFO within each class
(creation order — the old monotone sequence number is implied by append
order).  Two runs with the same seed therefore still produce identical
schedules, and schedules are identical to the heap-only implementation's.

Processes are plain Python generators that ``yield`` events; the kernel
resumes a process when the yielded event fires, sending the event's value
back into the generator (or throwing, if the event failed).  Interrupt
and kill *lazily cancel* the process's subscription to whatever it was
waiting on: instead of an O(n) ``list.remove`` on the target's callback
list, the target is marked stale and its eventual resumption is ignored.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "SimKernel",
    "Timeout",
]

#: Priority for ordinary events.
NORMAL = 1
#: Priority for urgent events (process bootstraps/interrupts) at equal time.
URGENT = 0

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries whatever object the interrupter supplied
    (for cluster simulations this is typically a fault descriptor or a
    power-cycle notice from an ICE Box).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Raised inside a process that has been forcibly killed."""


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value via :meth:`succeed` or :meth:`fail`, and is *processed* after the
    kernel has run its callbacks.
    """

    __slots__ = ("kernel", "callbacks", "_value", "_ok", "defused")

    def __init__(self, kernel: "SimKernel"):
        self.kernel = kernel
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set to True once a failure has been handled by a waiter, so
        #: unhandled failures can be surfaced at the end of the run.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.kernel._enqueue(self.kernel._now, NORMAL, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A waiter (process or callback) must *defuse* the failure, otherwise
        :meth:`SimKernel.run` re-raises it when the event is processed.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.kernel._enqueue(self.kernel._now, NORMAL, self)
        return self

    def trigger(self, event: "Event") -> None:
        """Chain: trigger this event with another event's outcome."""
        if event._value is _PENDING:
            raise RuntimeError("source event not triggered")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.kernel.now}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, kernel: "SimKernel", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(kernel)
        self.delay = delay
        self._ok = True
        self._value = value
        kernel._enqueue(kernel._now + delay, NORMAL, self)


class Initialize(Event):
    """Internal: bootstraps a process at the current time, urgently."""

    __slots__ = ()

    def __init__(self, kernel: "SimKernel", process: "Process"):
        super().__init__(kernel)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        kernel._enqueue(kernel._now, URGENT, self)


class Process(Event):
    """A running generator; itself an event that fires on termination.

    The process's value is the generator's return value (or the exception
    that terminated it).  Use :meth:`interrupt` to throw
    :class:`Interrupt` into the generator at the current simulation time.
    """

    __slots__ = ("_generator", "name", "_target", "_stale")

    def __init__(self, kernel: "SimKernel", generator: Generator,
                 name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(kernel)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: events this process detached from (lazy cancellation): their
        #: eventual firing must not resume the process.
        self._stale: Optional[set] = None
        self._target: Optional[Event] = Initialize(kernel, self)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def _detach(self) -> None:
        """Lazily cancel the subscription to the current wait target."""
        target = self._target
        if target is not None and target.callbacks is not None:
            if self._stale is None:
                self._stale = set()
            self._stale.add(target)

    @property
    def is_started(self) -> bool:
        """Has the generator reached its first yield?  An interrupt can
        only land inside a *started* generator — thrown earlier it would
        surface at the function header instead of the current wait."""
        generator = self._generator
        return (generator.gi_frame is None or generator.gi_running
                or generator.gi_suspended)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process (at the current time)."""
        if not self.is_alive:
            return
        if self._target is None:
            raise RuntimeError("cannot interrupt a process bootstrapping")
        event = Event(self.kernel)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.kernel._enqueue(self.kernel._now, URGENT, event)
        # Detach from what we were waiting on so the old event does not also
        # resume us later.
        self._detach()

    def kill(self) -> None:
        """Forcibly terminate the process via :class:`ProcessKilled`."""
        if not self.is_alive:
            return
        self._detach()
        try:
            self._generator.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        if self.is_alive:
            self._ok = True
            self._value = None
            self.kernel._enqueue(self.kernel._now, NORMAL, self)

    # -- resumption -----------------------------------------------------
    def _resume(self, event: Event) -> None:
        stale = self._stale
        if stale is not None and event in stale:
            # Lazily-cancelled subscription: the waiter moved on before
            # this event fired.  Failures keep their old semantics — we
            # do not defuse what we no longer handle.
            stale.discard(event)
            return
        self.kernel._active = self
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.kernel._enqueue(self.kernel._now, NORMAL, self)
                break
            except ProcessKilled:
                self._ok = True
                self._value = None
                self.kernel._enqueue(self.kernel._now, NORMAL, self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.kernel._enqueue(self.kernel._now, NORMAL, self)
                break
            if not isinstance(target, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded non-event {target!r}")
                event = Event(self.kernel)
                event._ok = False
                event._value = exc
                continue
            if target.kernel is not self.kernel:
                raise RuntimeError("event belongs to a different kernel")
            if target.callbacks is not None:
                # Not yet processed: wait for it.
                target.callbacks.append(self._resume)
                self._target = target
                break
            # Already processed: feed its value straight back in.
            event = target
        self.kernel._active = None


class ConditionValue(dict):
    """Mapping of event -> value for the events a condition matched."""


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count", "_completed")

    def __init__(self, kernel: "SimKernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._count = 0
        self._completed: list[Event] = []
        if not self.events:
            self.succeed(ConditionValue())
            return
        for event in self.events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _match(self, count: int, total: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        self._completed.append(event)
        if self._match(self._count, len(self.events)):
            value = ConditionValue()
            # Only events that actually completed — a pending Timeout has a
            # preset value but has not fired yet.
            completed = set(self._completed)
            for ev in self.events:
                if ev in completed:
                    value[ev] = ev._value
            self.succeed(value)


class AllOf(_Condition):
    """Fires once *all* of the given events have fired."""

    __slots__ = ()

    def _match(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(_Condition):
    """Fires once *any* of the given events has fired."""

    __slots__ = ()

    def _match(self, count: int, total: int) -> bool:
        return count >= 1


class _Bucket:
    """All events scheduled for one exact instant, split by priority."""

    __slots__ = ("urgent", "normal")

    def __init__(self) -> None:
        self.urgent: deque = deque()
        self.normal: deque = deque()


class SimKernel:
    """The discrete-event loop.

    Typical use::

        kernel = SimKernel()

        def worker(kernel):
            yield kernel.timeout(5.0)
            return "done"

        proc = kernel.process(worker(kernel))
        kernel.run()
        assert proc.value == "done"

    ``timer_wheel=False`` selects the legacy single-heap scheduler (one
    ``(time, priority, seq, event)`` entry per event).  Both schedulers
    process events in the identical order; the flag exists so the
    determinism suite and bench_e16 can compare them.
    """

    def __init__(self, start_time: float = 0.0, *, timer_wheel: bool = True):
        self._now = float(start_time)
        self._active: Optional[Process] = None
        self._pending = 0
        #: total events processed by step() — the denominator benchmarks
        #: use for events/s.
        self.events_processed = 0
        self.timer_wheel = timer_wheel
        if timer_wheel:
            self._wheel: dict[float, _Bucket] = {}
            self._times: list[float] = []
        else:
            self._heap: list[tuple[float, int, int, Event]] = []
            self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds, by repo-wide convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _enqueue(self, time: float, priority: int, event: Event) -> None:
        self._pending += 1
        if self.timer_wheel:
            bucket = self._wheel.get(time)
            if bucket is None:
                bucket = self._wheel[time] = _Bucket()
                heapq.heappush(self._times, time)
            if priority == NORMAL:
                bucket.normal.append(event)
            else:
                bucket.urgent.append(event)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (time, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if not self._pending:
            return float("inf")
        if not self.timer_wheel:
            return self._heap[0][0]
        times = self._times
        while True:
            time = times[0]
            bucket = self._wheel[time]
            if bucket.urgent or bucket.normal:
                return time
            # Exhausted instant: retire it and look at the next one.
            heapq.heappop(times)
            del self._wheel[time]

    def _pop(self) -> tuple[float, Event]:
        if not self.timer_wheel:
            time, _prio, _seq, event = heapq.heappop(self._heap)
            return time, event
        time = self.peek()
        bucket = self._wheel[time]
        if bucket.urgent:
            return time, bucket.urgent.popleft()
        return time, bucket.normal.popleft()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        time, event = self._pop()
        self._pending -= 1
        self.events_processed += 1
        if time < self._now:
            raise RuntimeError("event scheduled in the past")
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event
        fires.

        ``until`` may be a simulation time (the clock is advanced exactly to
        it) or an :class:`Event` (its value is returned; a failed event
        re-raises its exception).
        """
        if until is None:
            while self._pending:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._pending:
                    raise RuntimeError(
                        "no scheduled events left but 'until' event "
                        "has not fired")
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(
                f"deadline {deadline} is in the past (now={self._now})")
        while self._pending and self.peek() <= deadline:
            self.step()
        self._now = deadline
        return None
