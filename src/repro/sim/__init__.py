"""Deterministic discrete-event simulation kernel.

This package is the substrate every other ``repro`` subsystem runs on: the
simulated cluster nodes, the network fabric, the ICE Boxes, the monitoring
agents and the SLURM-lite resource manager are all processes scheduled on a
single :class:`~repro.sim.kernel.SimKernel` event loop.

The design is intentionally close to SimPy's generator-process model:

* :class:`~repro.sim.kernel.SimKernel` — the event loop (a time-ordered heap).
* :class:`~repro.sim.kernel.Event` — one-shot events with callbacks.
* :class:`~repro.sim.kernel.Process` — a generator that yields events.
* :class:`~repro.sim.kernel.Timeout` — an event that fires after a delay.
* :class:`~repro.sim.resources.Resource` / :class:`~repro.sim.resources.Store`
  — contention primitives.
* :class:`~repro.sim.rng.RandomStreams` — named deterministic RNG streams.

Everything is deterministic given a seed; there is no wall-clock dependence.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimKernel,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.rng import RESERVED_STREAMS, RandomStreams

__all__ = [
    "RESERVED_STREAMS",
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Resource",
    "RandomStreams",
    "SimKernel",
    "Store",
    "Timeout",
]
