"""Contention primitives for simulation processes.

:class:`Resource` models a fixed number of interchangeable slots (e.g. the
cloning master's concurrent unicast senders, or an ICE Box's command
executor).  :class:`Store` models a FIFO buffer of distinct items (e.g. a
message queue between a node agent and the ClusterWorX server).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.sim.kernel import Event, SimKernel

__all__ = ["Resource", "Store"]


class _Request(Event):
    """Event representing a pending acquire; fires when granted."""


class Resource:
    """``capacity`` interchangeable slots with FIFO granting.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ...  # critical section
        finally:
            resource.release(req)
    """

    def __init__(self, kernel: SimKernel, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self._users: set[_Request] = set()
        self._queue: deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Event:
        req = _Request(self.kernel)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self, request: Event) -> None:
        if request in self._users:
            self._users.remove(request)
        elif request in self._queue:
            self._queue.remove(request)
            return
        else:
            raise ValueError("release of a request that was never granted")
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """A FIFO buffer of items with optional capacity.

    ``put`` blocks (as an event) when full; ``get`` blocks when empty.
    Items are delivered in insertion order; an optional ``filter`` on ``get``
    delivers the first matching item instead.
    """

    def __init__(self, kernel: SimKernel,
                 capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]]
        self._getters = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.kernel)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        event = Event(self.kernel)
        self._getters.append((event, filter))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move waiting puts into the buffer while there is room.
            while self._putters and len(self.items) < self.capacity:
                put_event, item = self._putters.popleft()
                self.items.append(item)
                put_event.succeed()
                progressed = True
            # Satisfy getters from the buffer.
            pending: deque = deque()
            while self._getters:
                get_event, flt = self._getters.popleft()
                matched = None
                if flt is None:
                    if self.items:
                        matched = self.items.popleft()
                        found = True
                    else:
                        found = False
                else:
                    found = False
                    for idx, candidate in enumerate(self.items):
                        if flt(candidate):
                            matched = candidate
                            del self.items[idx]
                            found = True
                            break
                if found:
                    get_event.succeed(matched)
                    progressed = True
                else:
                    pending.append((get_event, flt))
            self._getters = pending
