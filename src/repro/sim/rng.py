"""Named deterministic random streams.

Every stochastic component in the simulation (thermal jitter on a node,
packet loss on a link, job arrival times) draws from its *own* named child
stream of a single root seed.  This keeps experiments reproducible and —
crucially for ablations — means that changing one component's consumption of
randomness does not perturb any other component's draws.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "RESERVED_STREAMS"]

#: Streams with a repo-wide reserved meaning.  Components must draw from
#: their own entry so that adding consumers to one subsystem never
#: perturbs another's schedule; new subsystems register here.
RESERVED_STREAMS: Dict[str, str] = {
    "faults": "hardware fault injection (repro.hardware.faults)",
    "clone": "multicast cloning repair phase (repro.imaging)",
    "remote": "fan-out engine latency + retry jitter (repro.remote)",
    "resilience": "recovery playbook backoff jitter (repro.resilience)",
    "chaos": "chaos-campaign fault plans (repro.resilience.chaos)",
}


class RandomStreams:
    """Factory of named, independent ``numpy.random.Generator`` streams.

    The stream for a name is derived from ``(root_seed, crc32(name))`` via
    :class:`numpy.random.SeedSequence`, so the mapping name -> stream is a
    pure function of the root seed and is stable across runs, Python
    versions, and insertion order.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (memoized) generator for ``name``.

        Reserved subsystem streams (see :data:`RESERVED_STREAMS`) resolve
        through exactly the same derivation — the registry only documents
        ownership, it does not change the mapping.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def __call__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per experiment)."""
        child_seed = zlib.crc32(salt.encode("utf-8")) ^ (self.seed * 2654435761 % 2**32)
        return RandomStreams(seed=child_seed)
