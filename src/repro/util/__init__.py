"""Shared utilities: ring buffers, units, streaming statistics, compression."""

from repro.util.ringbuffer import ByteRingBuffer, TimeSeriesRing
from repro.util.stats import StreamingStats
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    fmt_bytes,
    fmt_duration,
    mbit_per_s,
)

__all__ = [
    "ByteRingBuffer",
    "GIB",
    "KIB",
    "MIB",
    "StreamingStats",
    "TimeSeriesRing",
    "fmt_bytes",
    "fmt_duration",
    "mbit_per_s",
]
