"""Streaming statistics (Welford) for monitor values and benchmark output."""

from __future__ import annotations

import math

__all__ = ["StreamingStats"]


class StreamingStats:
    """Single-pass mean/variance/min/max accumulator.

    Numerically stable (Welford's algorithm); used by the monitoring server
    to keep per-metric summaries without storing every sample, and by the
    benchmark harness to summarize sweeps.
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def update(self, values) -> None:
        for x in values:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.n < 2:
            return math.nan
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Combine two accumulators (parallel Welford merge)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 = (self._m2 + other._m2
                    + delta * delta * self.n * other.n / n)
        self._mean += delta * other.n / n
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamingStats(n={self.n}, mean={self.mean:.4g}, "
                f"std={self.std:.4g}, min={self.min:.4g}, max={self.max:.4g})")
