"""Unit constants and formatting helpers used across the framework."""

from __future__ import annotations

__all__ = ["KIB", "MIB", "GIB", "mbit_per_s", "fmt_bytes", "fmt_duration"]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def mbit_per_s(mbit: float) -> float:
    """Convert megabits/second to bytes/second."""
    return mbit * 1e6 / 8.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``12m 03s``."""
    seconds = float(seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 60.0:
        return f"{seconds:.1f} s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m {secs:04.1f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h {int(minutes)}m {secs:04.1f}s"
