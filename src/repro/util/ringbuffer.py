"""Fixed-capacity ring buffers.

Two variants are used throughout the framework:

* :class:`ByteRingBuffer` — the ICE Box's 16 KB per-port serial capture
  buffer (§3.3 of the paper): appending past capacity silently discards the
  oldest bytes, which is exactly the post-mortem semantics the paper
  describes ("logging and buffering (up to 16k) of the output").
* :class:`TimeSeriesRing` — numpy-backed (timestamp, value) history used by
  the monitoring server for historical graphing (§5.1).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional, Tuple

import numpy as np

__all__ = ["ByteRingBuffer", "TimeSeriesRing"]


class ByteRingBuffer:
    """A bounded byte buffer that keeps only the most recent ``capacity`` bytes."""

    def __init__(self, capacity: int = 16 * 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf = bytearray()
        #: total bytes ever written (including discarded ones)
        self.total_written = 0

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def discarded(self) -> int:
        """Bytes lost to overflow so far."""
        return self.total_written - len(self._buf)

    def write(self, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8", errors="replace")
        self.total_written += len(data)
        if len(data) >= self.capacity:
            # The new chunk alone overflows: keep only its tail.
            self._buf = bytearray(data[-self.capacity:])
            return
        self._buf.extend(data)
        overflow = len(self._buf) - self.capacity
        if overflow > 0:
            del self._buf[:overflow]

    def snapshot(self) -> bytes:
        """Current contents, oldest byte first."""
        return bytes(self._buf)

    def text(self) -> str:
        return self.snapshot().decode("utf-8", errors="replace")

    def tail_lines(self, n: int) -> list[str]:
        """Last ``n`` complete-ish lines of the buffer."""
        return self.text().splitlines()[-n:]

    def clear(self) -> None:
        self._buf.clear()


class TimeSeriesRing:
    """Fixed-capacity (timestamp, value) series with lazy growth.

    Storage is a pair of ``array('d')`` buffers that grow with the data
    and wrap once ``capacity`` is reached — a monitoring server holds one
    ring per (host, metric), so hundreds of thousands of mostly-short
    series must not each pre-pay the full capacity (two 32 KiB numpy
    blocks per ring ≈ 36 GB at 10k nodes).  Range queries still hand out
    chronological numpy float64 arrays (zero-copy views of the buffers
    until the wrap seam forces a copy), so downsampling for historical
    graphs stays vectorized.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._t = array("d")
        self._v = array("d")
        self._head = 0   # index of next write

    def __len__(self) -> int:
        return len(self._t)

    def append(self, t: float, value: float) -> None:
        if len(self._t) < self.capacity:
            self._t.append(t)
            self._v.append(value)
            self._head = len(self._t) % self.capacity
        else:
            head = self._head
            self._t[head] = t
            self._v[head] = value
            self._head = (head + 1) % self.capacity

    def extend(self, pairs: Iterable[Tuple[float, float]]) -> None:
        for t, v in pairs:
            self.append(t, v)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """All stored samples in chronological order (fresh arrays)."""
        t = np.frombuffer(self._t, dtype=np.float64)
        v = np.frombuffer(self._v, dtype=np.float64)
        head = self._head
        if len(t) < self.capacity or head == 0:
            return t.copy(), v.copy()
        return (np.concatenate([t[head:], t[:head]]),
                np.concatenate([v[head:], v[:head]]))

    def window(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``t0 <= t <= t1`` in chronological order."""
        t, v = self.arrays()
        mask = (t >= t0) & (t <= t1)
        return t[mask], v[mask]

    def latest(self) -> Optional[Tuple[float, float]]:
        size = len(self._t)
        if size == 0:
            return None
        idx = (self._head - 1) % self.capacity if size == self.capacity \
            else size - 1
        return self._t[idx], self._v[idx]

    def downsample(self, buckets: int) -> Tuple[np.ndarray, np.ndarray,
                                                np.ndarray, np.ndarray]:
        """Aggregate into ``buckets`` equal time bins.

        Returns ``(bin_centers, mean, minimum, maximum)`` with NaN for empty
        bins — the RRD-style consolidation the historical-graphing view
        uses.
        """
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        t, v = self.arrays()
        if len(t) == 0:
            empty = np.empty(0)
            return empty, empty, empty, empty
        lo, hi = t[0], t[-1]
        if hi == lo:
            hi = lo + 1.0
        edges = np.linspace(lo, hi, buckets + 1)
        idx = np.clip(np.searchsorted(edges, t, side="right") - 1,
                      0, buckets - 1)
        mean = np.full(buckets, np.nan)
        vmin = np.full(buckets, np.nan)
        vmax = np.full(buckets, np.nan)
        counts = np.bincount(idx, minlength=buckets).astype(float)
        sums = np.bincount(idx, weights=v, minlength=buckets)
        nonzero = counts > 0
        mean[nonzero] = sums[nonzero] / counts[nonzero]
        # min/max need a reduction per bucket; do it on the sorted-by-bucket
        # view so each bucket is one contiguous slice.
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        sorted_v = v[order]
        boundaries = np.flatnonzero(np.diff(sorted_idx)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [len(sorted_v)]])
        for s, e in zip(starts, stops):
            b = sorted_idx[s]
            vmin[b] = sorted_v[s:e].min()
            vmax[b] = sorted_v[s:e].max()
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, mean, vmin, vmax
