"""Gateway wire formats: JSON for humans, schema-packed frames for fleets.

E7 (§5.3.3) already measured the trade: schema-packed binary frames are
roughly half the size of the text encoding because both ends share an
ordered field list and the wire carries only a presence bitmap plus
packed values.  The gateway is where that result finally pays off
against real traffic — a summary poll from thousands of clients is
dominated by encode cost and bytes out, not by the O(1) rollup read.

Every response body is a sequence of **frames**.  A frame is
``(kind, subject, t, values)``:

* ``kind`` — what the frame describes (``summary``, ``host``,
  ``delta``, ``event``, ``stats``, ...);
* ``subject`` — the entity (a hostname, a rule name, ``cluster``);
* ``t`` — the simulation time the values were read at;
* ``values`` — a flat ``name -> scalar`` mapping.

:class:`JsonWire` renders frames as JSON objects (single object for a
one-frame response, an array otherwise; SSE ``data:`` lines on a watch
stream).  :class:`BinaryWire` reuses
:class:`~repro.monitoring.transmission.BinaryCodec` in schema mode —
the exact E7 framing — with one shared schema per frame kind, and
length-prefixes each frame so streams self-delimit.  Codec choice is
negotiated per request via the ``Accept`` header (:func:`negotiate`).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.monitoring.transmission import BinaryCodec

__all__ = ["Frame", "JsonWire", "BinaryWire", "negotiate",
           "BINARY_CONTENT_TYPE", "JSON_CONTENT_TYPE", "SUMMARY_SCHEMA",
           "STATS_SCHEMA", "EVENT_SCHEMA"]

#: one response/stream element: (kind, subject, t, values).
Frame = Tuple[str, str, float, Mapping[str, object]]

JSON_CONTENT_TYPE = "application/json"
BINARY_CONTENT_TYPE = "application/x-worx-frame"

#: shared field order for cluster-summary frames (both ends compile
#: this in, like the MIB of §5.3.3 — nothing but the bitmap and packed
#: values travels).
SUMMARY_SCHEMA: Tuple[str, ...] = (
    "nodes_total", "nodes_up", "nodes_down", "cpu_util_mean_pct",
    "mem_used_bytes", "mem_total_bytes", "cpu_temp_max_c", "generation",
    "events_active", "sim_time")

#: shared field order for gateway /stats frames.
STATS_SCHEMA: Tuple[str, ...] = (
    "requests", "qps", "latency_p50_ms", "latency_p99_ms",
    "bytes_out", "active_watchers", "watch_frames", "watch_coalesced",
    "watch_dropped", "watch_evictions", "publishes", "publish_reuses",
    "errors")

#: shared field order for active-event / event-log frames.
EVENT_SCHEMA: Tuple[str, ...] = (
    "rule", "node", "action", "severity", "value", "action_ok", "time")

#: frame-kind byte on the binary wire (order is the wire contract).
_KIND_CODES: Dict[str, int] = {
    "summary": 1, "host": 2, "delta": 3, "event": 4, "stats": 5,
    "hosts": 6, "error": 7, "end": 8, "evicted": 9, "history": 10,
    "shard": 11}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


class JsonWire:
    """Frames as JSON: self-describing, greppable, and ~2x the bytes."""

    name = "json"
    content_type = JSON_CONTENT_TYPE
    stream_content_type = "text/event-stream"

    def _obj(self, frame: Frame) -> Dict[str, object]:
        kind, subject, t, values = frame
        return {"kind": kind, "subject": subject, "t": round(t, 3),
                "values": dict(values)}

    def encode(self, frames: List[Frame]) -> bytes:
        """One response body: a single object, or an array of them."""
        if len(frames) == 1:
            payload: object = self._obj(frames[0])
        else:
            payload = [self._obj(frame) for frame in frames]
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def encode_stream(self, frame: Frame) -> bytes:
        """One server-sent event carrying one frame."""
        return b"data: " + json.dumps(
            self._obj(frame), sort_keys=True,
            separators=(",", ":")).encode("utf-8") + b"\n\n"

    def decode(self, body: bytes) -> List[Frame]:
        payload = json.loads(body.decode("utf-8"))
        objs = payload if isinstance(payload, list) else [payload]
        return [(o["kind"], o["subject"], float(o["t"]), o["values"])
                for o in objs]


class BinaryWire:
    """Frames as length-prefixed schema-packed E7 binary.

    Layout per frame::

        <I total_len> <B kind> <BinaryCodec schema frame>

    where the codec frame carries (subject, t, bitmap, packed values)
    exactly as :class:`~repro.monitoring.transmission.BinaryCodec` in
    schema mode emits it; fields outside the kind's schema ride along
    self-described, so plugin metrics still fit.  The 4-byte length
    prefix makes both a pipelined response body and a live watch stream
    self-delimiting.
    """

    name = "binary"
    content_type = BINARY_CONTENT_TYPE
    stream_content_type = BINARY_CONTENT_TYPE

    def __init__(self, metric_schema: Optional[Iterable[str]] = None):
        metric_codec = BinaryCodec(schema=tuple(metric_schema)
                                   if metric_schema else None)
        event_codec = BinaryCodec(schema=EVENT_SCHEMA)
        self._codecs: Dict[str, BinaryCodec] = {
            "summary": BinaryCodec(schema=SUMMARY_SCHEMA),
            "stats": BinaryCodec(schema=STATS_SCHEMA),
            "host": metric_codec,
            "delta": metric_codec,
            "event": event_codec,
        }
        #: schemaless fallback for ad-hoc kinds (hosts, error, end).
        self._plain = BinaryCodec()

    def _codec(self, kind: str) -> BinaryCodec:
        return self._codecs.get(kind, self._plain)

    def encode_frame(self, frame: Frame) -> bytes:
        kind, subject, t, values = frame
        body = self._codec(kind).encode(subject, t, dict(values))
        code = _KIND_CODES.get(kind)
        if code is None:
            raise ValueError(f"unknown frame kind {kind!r}")
        return struct.pack("<IB", len(body) + 1, code) + body

    def encode(self, frames: List[Frame]) -> bytes:
        return b"".join(self.encode_frame(frame) for frame in frames)

    #: a watch stream uses the identical framing — that is the point.
    encode_stream = encode_frame

    def decode(self, body: bytes) -> List[Frame]:
        frames: List[Frame] = []
        pos = 0
        while pos < len(body):
            (length,) = struct.unpack_from("<I", body, pos)
            pos += 4
            code = body[pos]
            payload = body[pos + 1: pos + length]
            pos += length
            kind = _CODE_KINDS.get(code)
            if kind is None:
                raise ValueError(f"unknown frame code {code}")
            subject, t, values = self._codec(kind).decode(payload)
            frames.append((kind, subject, t, values))
        return frames


def negotiate(accept: Optional[str],
              binary_wire: BinaryWire,
              json_wire: JsonWire) -> "BinaryWire | JsonWire":
    """Pick the response codec from an ``Accept`` header.

    A client that lists the frame media type gets packed frames; every
    other value (absent header, ``*/*``, ``application/json``) gets
    JSON — text stays the safe, self-describing default, exactly the
    paper's §5.3.3 position, with binary as the opt-in for fleets that
    poll at scale.
    """
    if accept and BINARY_CONTENT_TYPE in accept:
        return binary_wire
    return json_wire
