"""Minimal, dependency-free HTTP/1.1 plumbing for the gateway.

Everything here is pure: bytes in, structured request out; route table
in, handler out; status + body in, response bytes out.  The asyncio
shell owns sockets, clocks and scheduling — this module owns the
protocol, so it stays deterministic (WORX102) and unit-testable without
a socket.

Only what the gateway needs is implemented: ``GET``, header parsing,
query strings, keep-alive, and chunk-free streaming responses (a watch
stream sets ``Connection: close`` and self-delimits via SSE events or
length-prefixed binary frames).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = ["HttpError", "HttpRequest", "Route", "Router",
           "parse_request", "format_response", "stream_header"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error"}


class HttpError(Exception):
    """Protocol-level failure mapped straight to a status response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class HttpRequest:
    """One parsed request line + headers (GET only, no body)."""

    __slots__ = ("method", "path", "query", "headers")

    def __init__(self, method: str, path: str,
                 query: Mapping[str, List[str]],
                 headers: Mapping[str, str]):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers

    def param(self, name: str, default: Optional[str] = None
              ) -> Optional[str]:
        values = self.query.get(name)
        return values[0] if values else default

    @property
    def accept(self) -> Optional[str]:
        return self.headers.get("accept")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() \
            != "close"


def parse_request(raw: bytes) -> HttpRequest:
    """Parse a request head (everything up to the blank line)."""
    try:
        text = raw.decode("latin-1")
    except UnicodeDecodeError:
        raise HttpError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    if method != "GET":
        raise HttpError(405, f"method {method} not supported")
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return HttpRequest(method, unquote(split.path),
                       parse_qs(split.query), headers)


def format_response(status: int, content_type: str, body: bytes, *,
                    keep_alive: bool = True,
                    extra: Optional[Mapping[str, str]] = None) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: " + ("keep-alive" if keep_alive else "close")]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def stream_header(content_type: str) -> bytes:
    """Response head for an unbounded watch stream (no length; the
    payload self-delimits and the connection closes to end it)."""
    return ("HTTP/1.1 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n").encode("latin-1")


class Route:
    """One path template: literal segments plus ``{name}`` captures."""

    __slots__ = ("template", "segments", "handler", "streaming")

    def __init__(self, template: str, handler: Callable, *,
                 streaming: bool = False):
        self.template = template
        self.segments = [s for s in template.split("/") if s]
        self.handler = handler
        self.streaming = streaming

    def match(self, path: str) -> Optional[Dict[str, str]]:
        parts = [s for s in path.split("/") if s]
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for pattern, part in zip(self.segments, parts):
            if pattern.startswith("{") and pattern.endswith("}"):
                params[pattern[1:-1]] = part
            elif pattern != part:
                return None
        return params


class Router:
    """First-match route table."""

    def __init__(self) -> None:
        self.routes: List[Route] = []

    def add(self, template: str, handler: Callable, *,
            streaming: bool = False) -> None:
        self.routes.append(Route(template, handler, streaming=streaming))

    def resolve(self, path: str) -> Tuple[Route, Dict[str, str]]:
        for route in self.routes:
            params = route.match(path)
            if params is not None:
                return route, params
        raise HttpError(404, f"no route for {path!r}")
