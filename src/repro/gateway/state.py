"""The sim-side publication point the gateway serves from.

The cardinal rule of the gateway is that serving **never** touches the
simulation thread's hot path.  :class:`GatewayState` enforces it
structurally:

* the *sim thread* calls :meth:`refresh` between kernel slices.  That
  is the only place the store/engine are read: one O(1) copy-on-write
  :class:`~repro.core.statestore.Snapshot`, the O(1) rollup summary,
  and the active-event list are captured into a single immutable
  :class:`PublishedView` and swapped in with one reference assignment;
* the *serving thread* reads ``self.view`` — an atomic attribute load
  — and answers every hot endpoint (summary, hosts, per-host values,
  NodeSet queries, events) from that frozen view.  Ten thousand
  concurrent requests share one snapshot at one generation; the store
  counters prove it (``full_copies`` stays 0, bench_e17 asserts it).

Snapshots make this thread-safe by construction: the store forks its
host map copy-on-write at the next write after a snapshot is taken, so
the map a published view holds is never mutated again — the sim thread
moves on, readers keep a stable world.  When :meth:`refresh` finds the
generation unchanged it republishes the same view object
(``publish_reuses``), which is the same zero-copy discipline E14
measured, now spanning threads.

Cold paths that genuinely need live structures (history ranges, the
event log) go through :meth:`locked`, which serializes with the sim
driver's slice lock — a bounded stall on a rare endpoint, never on the
hot ones.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.server import ClusterWorXServer
from repro.core.statestore import Snapshot
from repro.remote.nodeset import NodeSet
from repro.tooling.sanitizer import current_sanitizer

__all__ = ["PublishedView", "GatewayState"]


class PublishedView:
    """One immutable, generation-stamped world the gateway serves.

    Everything a hot endpoint can answer is on this object; once
    constructed it is never mutated, so any number of serving-side
    readers share it without locks.
    """

    __slots__ = ("snapshot", "summary", "events", "sim_time",
                 "generation", "hostnames", "degraded", "stale_shards",
                 "staleness_s")

    def __init__(self, snapshot: Snapshot,
                 summary: Mapping[str, object],
                 events: Tuple[Tuple[str, str], ...],
                 sim_time: float, *,
                 degraded: bool = False,
                 stale_shards: Tuple[str, ...] = (),
                 staleness_s: float = 0.0):
        self.snapshot = snapshot
        self.summary = summary
        self.events = events
        self.sim_time = sim_time
        self.generation = snapshot.generation
        self.hostnames: Tuple[str, ...] = tuple(sorted(snapshot))
        #: True while any shard's contribution to this view is stale
        #: (suspect, mid-drain, or dead-with-nodes); the data served is
        #: that shard's last good snapshot, and responses say so.
        self.degraded = degraded
        self.stale_shards = stale_shards
        #: worst heartbeat age among the stale shards at capture time.
        self.staleness_s = staleness_s


class GatewayState:
    """Bridge between the simulation thread and the serving loop."""

    def __init__(self, server: ClusterWorXServer, *,
                 lock: Optional[threading.Lock] = None,
                 resolver=None):
        self.server = server
        #: the sim driver's slice lock; cold endpoints serialize on it.
        self.lock = lock if lock is not None else threading.Lock()
        #: @group resolver for NodeSet-filtered queries (optional).
        self.resolver = resolver
        self.publishes = 0
        #: refreshes that found the generation unchanged and republished
        #: the existing view object — the cross-thread snapshot reuse.
        self.publish_reuses = 0
        #: (generation, folded nodeset) cache for the membership view.
        self._folded: Optional[Tuple[int, str]] = None
        #: worxsan runtime hook; None (one pointer test per call) when
        #: the sanitizer is off, which is the production configuration.
        self._san = current_sanitizer()
        #: snapshot-publication stall (fault plane): while kernel time
        #: is before this, refresh() republishes the existing view.
        self.stalled_until = 0.0
        self.publish_stalls = 0
        with self.lock:
            self.view: PublishedView = self._capture()

    # -- sim-thread side -----------------------------------------------------
    def _capture(self) -> PublishedView:  # worx: holds lock
        if self._san is not None:
            self._san.assert_locked(self.lock, "GatewayState._capture")
        store = self.server.store
        summary = store.summary()
        summary["events_active"] = self.server.engine.active_count()
        summary["sim_time"] = round(self.server.kernel.now, 3)
        # Degradation verdict: only a federation reports one (the flat
        # server has no shard to lose).  The degraded keys are added to
        # payloads ONLY while degraded, so a healthy run's responses
        # stay byte-identical to the pre-failover wire format.
        degraded_of = getattr(self.server, "degraded_info", None)
        info = degraded_of() if degraded_of is not None else None
        degraded = bool(info and info["degraded"])
        stale: Tuple[str, ...] = ()
        staleness = 0.0
        if degraded:
            stale = tuple(info["stale_shards"])
            staleness = round(float(info["staleness_s"]), 3)
            summary["degraded"] = True
            summary["stale_shards"] = ",".join(stale)
            summary["staleness_s"] = staleness
        view = PublishedView(
            snapshot=store.snapshot(),
            summary=summary,
            events=tuple(self.server.engine.active_events()),
            sim_time=self.server.kernel.now,
            degraded=degraded, stale_shards=stale,
            staleness_s=staleness)
        if self._san is not None:
            self._san.freeze_view(view)
            self._san.record("publish", f"gen={view.generation}")
        return view

    def refresh(self) -> PublishedView:  # worx: holds lock
        """Publish the current world.  **Sim thread only**, under the
        slice lock (the driver holds it across the kernel step and
        this publish).

        O(1) when nothing changed (the old view is republished) and
        O(1)+COW bookkeeping when it did — never a per-node scan, never
        a value copy.
        """
        view = self.view
        if self.server.kernel.now < self.stalled_until:
            # Publication stalled (fault plane): the world may have
            # moved on, but the gateway keeps serving the last
            # published view — stale, never wrong, never a 500.
            self.publish_stalls += 1
            return view
        if view.generation == self.server.store.generation \
                and view.sim_time == self.server.kernel.now:
            self.publish_reuses += 1
            return view
        view = self._capture()
        self.view = view  # atomic reference swap; readers see old or new
        self.publishes += 1
        return view

    def stall(self, until: float) -> None:
        """Suspend publication until sim time ``until`` (fault plane:
        the "gateway snapshot publication" fault class).  Serving
        continues off the last published view throughout."""
        self.stalled_until = until

    # -- serving side (all reads off the frozen view) ------------------------
    def summary(self) -> Tuple[float, Mapping[str, object]]:
        view = self.view
        return view.sim_time, view.summary

    def host(self, hostname: str
             ) -> Optional[Tuple[float, Mapping[str, object]]]:
        view = self.view
        if hostname not in view.snapshot:
            return None
        return view.sim_time, view.snapshot[hostname]

    def hostnames(self) -> Tuple[str, ...]:
        return self.view.hostnames

    def folded_hosts(self) -> str:
        """The membership as folded NodeSet range algebra
        (``node[001-400]``), cached per store generation — folding ten
        thousand names per request would be the exact per-query scan
        the gateway exists to avoid."""
        view = self.view
        cached = self._folded
        if cached is not None and cached[0] == view.generation:
            return cached[1]
        folded = NodeSet(",".join(view.hostnames)).fold() \
            if view.hostnames else ""
        self._folded = (view.generation, folded)
        return folded

    def query(self, nodes: Optional[str] = None,
              metrics: Optional[List[str]] = None
              ) -> Tuple[float, List[Tuple[str, Mapping[str, object]]]]:
        """NodeSet-filtered bulk read: ``nodes`` is range algebra
        (``node[001-016]``, ``@rack2``), ``metrics`` projects columns."""
        view = self.view
        if nodes:
            wanted = [h for h in NodeSet(nodes, resolver=self.resolver)
                      if h in view.snapshot]
        else:
            wanted = list(view.hostnames)
        rows: List[Tuple[str, Mapping[str, object]]] = []
        for hostname in wanted:
            values = view.snapshot[hostname]
            if metrics:
                values = {m: values[m] for m in metrics if m in values}
            rows.append((hostname, values))
        return view.sim_time, rows

    def active_events(self) -> Tuple[float, Tuple[Tuple[str, str], ...]]:
        view = self.view
        return view.sim_time, view.events

    def shards(self) -> List[Dict[str, object]]:
        """Per-shard control-plane rows; a flat server reports itself
        as a single synthetic shard so the endpoint shape is
        topology-independent.

        This is a *cold* endpoint: the rows read live control-plane
        counters (update totals, active-event counts), so it
        serializes with the sim driver's slice lock like the other
        cold paths — worxsan (WORX201/203) caught the original
        lock-free version reading them mid-slice.
        """
        with self.lock:
            stats = getattr(self.server, "shard_stats", None)
            if stats is not None:
                return stats()
            view = self.view
            return [{
                "index": 0,
                "name": "flat",
                "active": True,
                "health": "healthy",
                "heartbeat_age": 0.0,
                "nodes": len(view.hostnames),
                "updates_received": self.server.updates_received,
                "generation": view.generation,
                "events_active": self.server.engine.active_count(),
            }]

    # -- serving side, cold (serialized with the sim slice lock) -------------
    def history_graph(self, hostname: str, metric: str, *,
                      buckets: int = 60
                      ) -> List[Tuple[float, float, float, float]]:
        """Downsampled (center, mean, min, max) rows for one series."""
        with self.lock:
            centers, mean, lo, hi = self.server.history.graph(
                hostname, metric, buckets)
            return [(float(c), float(m), float(a), float(b))
                    for c, m, a, b in zip(centers, mean, lo, hi)]

    def history_window(self, hostname: str, metric: str,
                       t0: float, t1: float
                       ) -> List[Tuple[float, float]]:
        with self.lock:
            times, values = self.server.history.window(
                hostname, metric, t0, t1)
            return [(float(t), float(v))
                    for t, v in zip(times, values)]

    def event_log(self, *, since: float = 0.0,
                  node: Optional[str] = None,
                  limit: int = 100) -> List[Dict[str, object]]:
        with self.lock:
            fired = self.server.engine.event_log(
                since=since, node=node, limit=limit)
            return [{"rule": e.rule, "node": e.node, "action": e.action,
                     "value": e.value, "action_ok": e.action_ok,
                     "time": e.time}
                    for e in fired]
