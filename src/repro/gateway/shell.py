"""The gateway's serving shell: asyncio sockets, wall clocks, threads.

This is the one module in :mod:`repro.gateway` allowed to read real
clocks — it is the declared WORX102 shell (like ``cli.py``), because it
measures *actual* request latency and paces *actual* traffic; every
policy decision (routing, framing, backpressure, metrics arithmetic)
lives in the deterministic sibling modules.

Two worlds, one contract:

* :class:`SimDriver` runs the simulation on its own thread in bounded
  slices, holding the slice lock only while the kernel steps, and
  publishes a fresh immutable view through
  :meth:`~repro.gateway.state.GatewayState.refresh` after each slice.
* :class:`GatewayService` serves HTTP/1.1 on an asyncio event loop.
  Hot endpoints read the published view (no lock, no sim-thread work);
  watch streams drain :class:`~repro.gateway.watch.WatchClient`
  buffers that the sim thread fills through the subscription bus.
  ``await writer.drain()`` is the per-client backpressure valve — a
  slow socket backs its own buffer up into coalescing and eventually
  eviction, never into the simulation.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.server import ClusterWorXServer
from repro.gateway.httpd import (HttpError, HttpRequest, format_response,
                                 parse_request, stream_header)
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.routes import build_router
from repro.gateway.state import GatewayState
from repro.gateway.watch import WatchClient, WatchHub, WatchPolicy
from repro.gateway.wire import BinaryWire, Frame, JsonWire, negotiate

__all__ = ["SimDriver", "GatewayService", "fetch", "read_stream_frames"]


class SimDriver(threading.Thread):
    """Advance the simulation in slices; publish a view after each.

    ``slice_seconds`` is *simulated* time per step; ``pace_seconds`` is
    a real sleep between steps that hands the GIL to the serving loop
    (0 free-runs the sim as fast as the hardware allows).
    """

    def __init__(self, server: ClusterWorXServer, state: GatewayState, *,
                 slice_seconds: float = 1.0,
                 pace_seconds: float = 0.001):
        super().__init__(name="gateway-sim", daemon=True)
        self.server = server
        self.state = state
        self.slice_seconds = slice_seconds
        self.pace_seconds = pace_seconds
        self._stop_flag = threading.Event()
        self.slices = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        kernel = self.server.kernel
        try:
            while not self._stop_flag.is_set():
                with self.state.lock:
                    kernel.run(until=kernel.now + self.slice_seconds)
                    self.state.refresh()
                self.slices += 1
                if self.pace_seconds:
                    time.sleep(self.pace_seconds)
        except BaseException as exc:  # surfaced by stop(); never silent
            self.error = exc

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_flag.set()
        self.join(timeout)
        if self.error is not None:
            raise RuntimeError("simulation thread died") from self.error


class GatewayService:
    """The asyncio front door over one ClusterWorX server."""

    def __init__(self, server: ClusterWorXServer, *,
                 cluster=None,
                 host: str = "127.0.0.1", port: int = 0,
                 policy: Optional[WatchPolicy] = None,
                 max_watchers: int = 10000,
                 idle_timeout: float = 30.0,
                 heartbeat: float = 10.0):
        self.server = server
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self.heartbeat = heartbeat
        self.max_watchers = max_watchers
        self.sim_lock = threading.Lock()
        resolver = cluster.group_resolver() if cluster is not None \
            else None
        self.state = GatewayState(server, lock=self.sim_lock,
                                  resolver=resolver)
        self.hub = WatchHub(server, policy=policy)
        self.metrics = GatewayMetrics()
        self.json_wire = JsonWire()
        self.binary_wire = BinaryWire(
            metric_schema=server.registry.names)
        self.router = build_router(self.state, self.stats_values)
        self.driver = SimDriver(server, self.state)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.connections = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "GatewayService":
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            backlog=4096)  # thousands of watchers connect in a burst
        self.port = self._server.sockets[0].getsockname()[1]
        self.metrics.start(time.perf_counter())
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.hub.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- /stats assembly ----------------------------------------------------
    def stats_values(self) -> Dict[str, object]:
        values = self.metrics.values(time.perf_counter())
        values.update(self.hub.totals())
        values["active_watchers"] = self.hub.active_watchers
        values["publishes"] = self.state.publishes
        values["publish_reuses"] = self.state.publish_reuses
        return values

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # service torn down mid-connection; just drop it
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone; nothing left to flush
        return None

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"),
                    timeout=self.idle_timeout)
            except (asyncio.IncompleteReadError,
                    asyncio.TimeoutError, ConnectionError):
                return
            t0 = time.perf_counter()
            try:
                request = parse_request(head)
            except HttpError as exc:
                writer.write(format_response(
                    exc.status, "text/plain",
                    exc.message.encode("utf-8"), keep_alive=False))
                await writer.drain()
                return
            if request.path == "/v1/watch":
                await self._serve_watch(request, writer)
                return
            keep_alive = await self._serve_request(request, writer, t0)
            if not keep_alive:
                return

    async def _serve_request(self, request: HttpRequest,
                             writer: asyncio.StreamWriter,
                             t0: float) -> bool:
        wire = negotiate(request.accept, self.binary_wire,
                         self.json_wire)
        route_name = request.path
        try:
            route, params = self.router.resolve(request.path)
            route_name = route.template
            status, frames = route.handler(request, params)
        except HttpError as exc:
            status = exc.status
            frames = [("error", "request", self.state.view.sim_time,
                       {"status": exc.status, "message": exc.message})]
        except Exception as exc:  # a handler bug must not kill the loop
            status = 500
            frames = [("error", "request", self.state.view.sim_time,
                       {"status": 500, "message": f"{type(exc).__name__}:"
                                                  f" {exc}"})]
        body = wire.encode(frames)
        keep_alive = request.keep_alive
        writer.write(format_response(status, wire.content_type, body,
                                     keep_alive=keep_alive))
        await writer.drain()
        now = time.perf_counter()
        self.metrics.record(route_name, status, now - t0, len(body),
                            now)
        return keep_alive

    # -- the watch stream ----------------------------------------------------
    async def _serve_watch(self, request: HttpRequest,
                           writer: asyncio.StreamWriter) -> None:
        wire = negotiate(request.accept, self.binary_wire,
                         self.json_wire)
        if self.hub.active_watchers >= self.max_watchers:
            writer.write(format_response(
                429, "text/plain", b"watcher limit reached",
                keep_alive=False))
            await writer.drain()
            return
        loop = asyncio.get_running_loop()
        wakeup = asyncio.Event()

        def notify() -> None:
            try:
                loop.call_soon_threadsafe(wakeup.set)
            except RuntimeError:
                pass  # loop already closed; the stream is ending anyway

        hosts = request.param("hosts")
        client = WatchClient(
            hosts=self._expand_hosts(hosts) if hosts else None,
            metrics=[m for m in
                     (request.param("metrics") or "").split(",") if m]
            or None,
            policy=self.hub.policy, notify=notify)
        self.hub.register(client)
        try:
            writer.write(stream_header(wire.stream_content_type))
            await writer.drain()
            while True:
                try:
                    await asyncio.wait_for(wakeup.wait(),
                                           timeout=self.heartbeat)
                except asyncio.TimeoutError:
                    view = self.state.view
                    payload: Dict[str, object] = {}
                    if view.degraded:
                        # A degraded heartbeat tells the watcher its
                        # stream may be missing deltas from the stale
                        # shards (scalar values only: the binary wire
                        # packs no lists).
                        payload["degraded"] = True
                        payload["stale_shards"] = ",".join(
                            view.stale_shards)
                        payload["staleness_s"] = view.staleness_s
                    beat = wire.encode_stream(
                        ("end", "heartbeat", view.sim_time, payload))
                    writer.write(beat)
                    await writer.drain()
                    continue
                wakeup.clear()
                chunks: List[bytes] = [
                    wire.encode_stream(("delta", hostname, t,
                                        dict(values)))
                    for hostname, t, values in client.drain()]
                if client.evicted:
                    chunks.append(wire.encode_stream(
                        ("evicted", "slow-consumer",
                         self.state.view.sim_time,
                         {"coalesced": client.coalesced,
                          "dropped": client.dropped})))
                if chunks:
                    payload = b"".join(chunks)
                    writer.write(payload)
                    await writer.drain()  # the backpressure valve
                    self.metrics.record_stream_bytes(len(payload))
                if client.evicted:
                    break
        except (ConnectionError, OSError):
            pass  # client hung up mid-stream: normal stream teardown
        finally:
            self.hub.unregister(client)

    def _expand_hosts(self, expression: str) -> List[str]:
        from repro.remote.nodeset import NodeSet
        return list(NodeSet(expression, resolver=self.state.resolver))


# -- a tiny client (CLI probes, benches, tests) ------------------------------

async def fetch(host: str, port: int, path: str, *,
                accept: Optional[str] = None,
                timeout: float = 10.0
                ) -> Tuple[int, str, bytes]:
    """One GET: returns (status, content-type, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        headers = f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
        if accept:
            headers += f"Accept: {accept}\r\n"
        headers += "Connection: close\r\n\r\n"
        writer.write(headers.encode("latin-1"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    content_type = ""
    for line in lines[1:]:
        if line.lower().startswith("content-type:"):
            content_type = line.partition(":")[2].strip()
    return status, content_type, body


async def read_stream_frames(reader: asyncio.StreamReader,
                             wire: "BinaryWire | JsonWire",
                             count: int, *,
                             timeout: float = 10.0,
                             kinds: Tuple[str, ...] = ("delta",)
                             ) -> List[Frame]:
    """Read ``count`` matching frames off an open watch stream."""
    frames: List[Frame] = []
    buffer = b""
    deadline = time.perf_counter() + timeout
    while len(frames) < count:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            raise asyncio.TimeoutError(
                f"only {len(frames)}/{count} frames before timeout")
        chunk = await asyncio.wait_for(reader.read(65536),
                                       timeout=remaining)
        if not chunk:
            break
        buffer += chunk
        buffer, decoded = _drain_buffer(buffer, wire)
        frames.extend(f for f in decoded if f[0] in kinds)
    return frames


def _drain_buffer(buffer: bytes, wire: "BinaryWire | JsonWire"
                  ) -> Tuple[bytes, List[Frame]]:
    """Split complete frames off a stream buffer; keep the remainder."""
    frames: List[Frame] = []
    if isinstance(wire, JsonWire):
        while b"\n\n" in buffer:
            event, _, buffer = buffer.partition(b"\n\n")
            if event.startswith(b"data: "):
                frames.extend(wire.decode(event[len(b"data: "):]))
        return buffer, frames
    import struct as _struct
    while len(buffer) >= 4:
        (length,) = _struct.unpack_from("<I", buffer, 0)
        if len(buffer) < 4 + length:
            break
        frames.extend(wire.decode(buffer[:4 + length]))
        buffer = buffer[4 + length:]
    return buffer, frames
