"""Gateway-side request metrics: QPS, latency quantiles, bytes out.

The serving shell owns the wall clock (this is real traffic, not
simulation); this module owns the arithmetic.  Every entry point takes
explicit timestamps/durations, so the accounting itself stays
deterministic and unit-testable (WORX102-clean), and the shell remains
the only module that reads ``perf_counter``.

Latency quantiles come from a bounded reservoir of the most recent
samples (a ``deque(maxlen=...)``), sorted on demand — /stats is a cold
endpoint, request recording is the hot one, so the cost lands on the
reader.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["GatewayMetrics"]


class GatewayMetrics:
    """Counters + a latency reservoir for one gateway instance."""

    def __init__(self, *, reservoir: int = 8192):
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        #: server-side failures only (status >= 500) — the E19 campaign
        #: asserts this stays 0 through a shard fail-over.
        self.server_errors = 0
        self.bytes_out = 0
        self.by_route: Dict[str, int] = {}
        self._latencies: Deque[float] = deque(maxlen=reservoir)
        self._started_at: Optional[float] = None
        self._last_at: Optional[float] = None

    def start(self, now: float) -> None:
        """Mark serving start; ``now`` is the shell's monotonic clock."""
        self._started_at = now

    def record(self, route: str, status: int, latency_s: float,
               bytes_out: int, now: float) -> None:
        """Account one completed (non-streaming) request."""
        with self._lock:
            self.requests += 1
            if status >= 400:
                self.errors += 1
            if status >= 500:
                self.server_errors += 1
            self.bytes_out += bytes_out
            self.by_route[route] = self.by_route.get(route, 0) + 1
            self._latencies.append(latency_s)
            self._last_at = now

    def record_stream_bytes(self, n: int) -> None:
        with self._lock:
            self.bytes_out += n

    def _quantile(self, ordered, q: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def values(self, now: float) -> Dict[str, object]:
        """The flat /stats payload (shell supplies ``now``)."""
        with self._lock:
            ordered = sorted(self._latencies)
            started = self._started_at
            elapsed = (now - started) if started is not None else 0.0
            return {
                "requests": self.requests,
                "qps": round(self.requests / elapsed, 1)
                if elapsed > 0 else 0.0,
                "latency_p50_ms": round(
                    self._quantile(ordered, 0.50) * 1e3, 3),
                "latency_p99_ms": round(
                    self._quantile(ordered, 0.99) * 1e3, 3),
                "bytes_out": self.bytes_out,
                "errors": self.errors,
                "server_errors": self.server_errors,
            }
