"""Live watch streams: the subscription bus fanned out to real clients.

The store's subscription bus delivers every matching
:class:`~repro.core.statestore.Update` synchronously, on the simulation
thread, inside the publish loop.  A real network client cannot be
allowed anywhere near that loop — a stalled socket would stall the
cluster.  The hub decouples the two worlds:

* :class:`WatchHub` holds **one** bus subscription total.  Its callback
  does O(matching clients) work per update: look the hostname up in a
  host index, append to each matching client's bounded buffer, fire the
  client's edge-triggered wakeup.  Nothing in it blocks, allocates per
  byte, or calls back into the store (WORX104 holds by construction —
  and the bus's slow-consumer detach contract backstops it: were the
  hub callback ever to start raising, the store cuts it off rather
  than degrading every publish).
* :class:`WatchClient` owns a two-stage bounded buffer.  Stage one is a
  FIFO of verbatim deltas (``queue_limit``).  When a consumer falls
  behind, overflow **coalesces**: later deltas merge per-host into a
  "latest values" map, so a recovering client gets one merged delta per
  host instead of the full backlog — bounded memory, newest data, in
  exactly the change-suppression spirit of §5.3.2.  A consumer that
  stays behind past ``evict_backlog`` merged hosts is **evicted**: the
  buffers drop, an eviction notice is queued, and the serving shell
  closes the stream.  One slow reader costs one notice, never a queue
  that grows with the cluster.

The hub is deterministic and loop-agnostic: wakeups are injected
callables (the asyncio shell passes ``loop.call_soon_threadsafe``), so
every policy decision here is unit-testable without a socket.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import (Callable, Deque, Dict, List, Mapping, Optional, Set,
                    Tuple)

from repro.core.server import ClusterWorXServer
from repro.core.statestore import Update

__all__ = ["WatchPolicy", "WatchClient", "WatchHub"]


class WatchPolicy:
    """Backpressure knobs shared by every client of one hub."""

    __slots__ = ("queue_limit", "evict_backlog")

    def __init__(self, *, queue_limit: int = 128,
                 evict_backlog: int = 1024):
        #: verbatim deltas buffered before coalescing starts.
        self.queue_limit = queue_limit
        #: distinct hosts allowed in the coalesced overflow map before
        #: the consumer is declared dead and evicted.
        self.evict_backlog = evict_backlog


class WatchClient:
    """One stream consumer: filters, bounded buffer, wakeup."""

    __slots__ = ("name", "hosts", "metrics", "policy", "notify",
                 "_lock", "_pending", "_coalesced", "delivered",
                 "coalesced", "dropped", "evicted", "closed")

    def __init__(self, *, name: str = "watch",
                 hosts: Optional[List[str]] = None,
                 metrics: Optional[List[str]] = None,
                 policy: Optional[WatchPolicy] = None,
                 notify: Optional[Callable[[], None]] = None):
        self.name = name
        self.hosts: Optional[Set[str]] = set(hosts) if hosts else None
        self.metrics: Optional[Set[str]] = set(metrics) if metrics \
            else None
        self.policy = policy if policy is not None else WatchPolicy()
        #: edge-triggered wakeup into the consumer's world; called with
        #: the hub's lock *not* held and only on empty->non-empty.
        self.notify = notify
        self._lock = threading.Lock()
        self._pending: Deque[Tuple[str, float, Mapping[str, object]]] = \
            deque()
        #: hostname -> (t, merged values) overflow map.
        self._coalesced: Dict[str, Tuple[float, Dict[str, object]]] = {}
        self.delivered = 0
        self.coalesced = 0
        self.dropped = 0
        self.evicted = False
        self.closed = False

    def wants(self, update: Update) -> bool:
        if self.hosts is not None and update.hostname not in self.hosts:
            return False
        if self.metrics is not None \
                and self.metrics.isdisjoint(update.values):
            return False
        return True

    def push(self, update: Update) -> bool:
        """Buffer one delta (sim thread).  Returns True when the
        consumer should be woken (buffer was empty)."""
        with self._lock:
            if self.evicted or self.closed:
                return False
            was_empty = not self._pending and not self._coalesced
            if len(self._pending) < self.policy.queue_limit \
                    and not self._coalesced:
                self._pending.append((update.hostname, update.time,
                                      update.values))
                return was_empty
            # Slow consumer: merge into the per-host latest-values map.
            entry = self._coalesced.get(update.hostname)
            if entry is None:
                if len(self._coalesced) >= self.policy.evict_backlog:
                    self._evict_locked()
                    return True  # wake it so the shell sees the notice
                self._coalesced[update.hostname] = (
                    update.time, dict(update.values))
            else:
                merged = entry[1]
                merged.update(update.values)
                self._coalesced[update.hostname] = (update.time, merged)
                self.dropped += 1  # a distinct delta folded away
            self.coalesced += 1
            return was_empty

    def _evict_locked(self) -> None:
        self.evicted = True
        self._pending.clear()
        self._coalesced.clear()

    def drain(self) -> List[Tuple[str, float, Mapping[str, object]]]:
        """Take everything buffered (consumer side): verbatim deltas
        first, then one merged delta per coalesced host."""
        with self._lock:
            out = list(self._pending)
            self._pending.clear()
            if self._coalesced:
                for hostname, (t, values) in self._coalesced.items():
                    out.append((hostname, t, values))
                self._coalesced.clear()
            self.delivered += len(out)
            return out

    def close(self) -> None:
        with self._lock:
            self.closed = True
            self._pending.clear()
            self._coalesced.clear()


class WatchHub:
    """All watch clients of one gateway, behind one bus subscription."""

    def __init__(self, server: ClusterWorXServer, *,
                 policy: Optional[WatchPolicy] = None):
        self.server = server
        self.policy = policy if policy is not None else WatchPolicy()
        self._lock = threading.Lock()
        #: hostname -> clients filtered to it; None-filter clients live
        #: in the wildcard list (they match every host).
        self._by_host: Dict[str, Set[WatchClient]] = {}
        self._wildcard: Set[WatchClient] = set()
        self.pushes = 0
        self.evictions = 0
        #: counters carried over from unregistered clients, so /stats
        #: totals are cumulative rather than only-currently-connected.
        self._retired = {"watch_frames": 0, "watch_coalesced": 0,
                         "watch_dropped": 0}
        self._sub = server.subscribe(self._on_update, name="gateway")

    # -- registration (serving side) -----------------------------------------
    def register(self, client: WatchClient) -> WatchClient:
        with self._lock:
            if client.hosts is None:
                self._wildcard.add(client)
            else:
                for hostname in client.hosts:
                    self._by_host.setdefault(hostname, set()).add(client)
        return client

    def unregister(self, client: WatchClient) -> None:
        client.close()
        with self._lock:
            self._retired["watch_frames"] += client.delivered
            self._retired["watch_coalesced"] += client.coalesced
            self._retired["watch_dropped"] += client.dropped
            self._wildcard.discard(client)
            if client.hosts is not None:
                for hostname in client.hosts:
                    bucket = self._by_host.get(hostname)
                    if bucket is not None:
                        bucket.discard(client)
                        if not bucket:
                            del self._by_host[hostname]

    @property
    def active_watchers(self) -> int:
        with self._lock:
            return len(self._wildcard) \
                + len({c for bucket in self._by_host.values()
                       for c in bucket})

    def totals(self) -> Dict[str, int]:
        """Aggregate per-client counters for /stats."""
        with self._lock:
            clients = set(self._wildcard)
            for bucket in self._by_host.values():
                clients.update(bucket)
            retired = dict(self._retired)
        frames = retired["watch_frames"] \
            + sum(c.delivered for c in clients)
        coalesced = retired["watch_coalesced"] \
            + sum(c.coalesced for c in clients)
        dropped = retired["watch_dropped"] \
            + sum(c.dropped for c in clients)
        return {"watch_frames": frames, "watch_coalesced": coalesced,
                "watch_dropped": dropped,
                "watch_evictions": self.evictions}

    def close(self) -> None:
        self._sub.cancel()
        with self._lock:
            clients = set(self._wildcard)
            for bucket in self._by_host.values():
                clients.update(bucket)
            self._wildcard.clear()
            self._by_host.clear()
        for client in clients:
            client.close()

    # -- the bus callback (sim thread; must stay cheap and non-mutating) -----
    def _on_update(self, update: Update) -> None:
        self.pushes += 1
        with self._lock:
            targets = self._by_host.get(update.hostname)
            if targets:
                clients = list(self._wildcard) + list(targets) \
                    if self._wildcard else list(targets)
            elif self._wildcard:
                clients = list(self._wildcard)
            else:
                return
        for client in clients:
            if not client.wants(update):
                continue
            wake = client.push(update)
            if client.evicted and not client.closed:
                self.evictions += 1
                client.closed = True  # count each eviction once
            if wake and client.notify is not None:
                client.notify()
