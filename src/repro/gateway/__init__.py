"""repro.gateway — the async serving front-end over COW snapshots.

A JSON/REST + streaming gateway that serves cluster state straight off
the :class:`~repro.core.statestore.StateStore`'s copy-on-write
snapshots without ever touching the simulation thread's hot path, plus
live watch streams fed by the subscription bus with per-client bounded
buffers, coalescing under backpressure, and slow-consumer eviction.

Module map (deterministic core, one wall-clock shell):

=========================  ================================================
:mod:`repro.gateway.wire`    frame model + JSON / E7 binary codecs
:mod:`repro.gateway.httpd`   HTTP/1.1 parsing, routing, response bytes
:mod:`repro.gateway.state`   PublishedView capture/refresh + reads
:mod:`repro.gateway.watch`   WatchHub/WatchClient backpressure machinery
:mod:`repro.gateway.routes`  endpoint handlers as pure frame producers
:mod:`repro.gateway.metrics` QPS / latency-quantile accounting
:mod:`repro.gateway.shell`   asyncio sockets + SimDriver (WORX102 shell)
=========================  ================================================
"""

from repro.gateway.httpd import (HttpError, HttpRequest, Route, Router,
                                 format_response, parse_request,
                                 stream_header)
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.routes import build_router
from repro.gateway.shell import (GatewayService, SimDriver, fetch,
                                 read_stream_frames)
from repro.gateway.state import GatewayState, PublishedView
from repro.gateway.watch import WatchClient, WatchHub, WatchPolicy
from repro.gateway.wire import (BINARY_CONTENT_TYPE, JSON_CONTENT_TYPE,
                                BinaryWire, Frame, JsonWire, negotiate)

__all__ = [
    "HttpError", "HttpRequest", "Route", "Router", "parse_request",
    "format_response", "stream_header",
    "GatewayMetrics", "build_router",
    "GatewayService", "SimDriver", "fetch", "read_stream_frames",
    "GatewayState", "PublishedView",
    "WatchClient", "WatchHub", "WatchPolicy",
    "BinaryWire", "JsonWire", "Frame", "negotiate",
    "BINARY_CONTENT_TYPE", "JSON_CONTENT_TYPE",
]
