"""The gateway's endpoint handlers, as pure frame producers.

Each handler maps ``(request, path params)`` to ``(status, frames)``;
the shell picks the wire codec (Accept negotiation) and writes bytes.
Handlers only ever read the :class:`~repro.gateway.state.GatewayState`
— hot endpoints off the frozen published view, cold ones through the
slice lock — so this module stays deterministic and socket-free.

The surface (all ``GET``):

==========================================  =================================
``/v1/summary``                             cluster rollup (O(1) read)
``/v1/hosts``                               membership, NodeSet-folded
``/v1/hosts/{hostname}``                    one node's current values
``/v1/query?nodes=&metrics=``               NodeSet-filtered bulk read
``/v1/events``                              active (rule, node) events
``/v1/events/log?since=&node=&limit=``      fired-event history (locked)
``/v1/history/{hostname}/{metric}``         downsampled graph or raw window
``/v1/watch?hosts=&metrics=``               live delta stream (shell-owned)
``/v1/shards``                              control-plane shard stats
``/stats``                                  gateway request metrics
==========================================  =================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.gateway.httpd import HttpError, HttpRequest, Router
from repro.gateway.state import GatewayState
from repro.gateway.wire import Frame

__all__ = ["build_router"]

#: handler result: HTTP status + response frames.
Result = Tuple[int, List[Frame]]


def _split_param(request: HttpRequest, name: str) -> List[str]:
    raw = request.param(name)
    return [p for p in raw.split(",") if p] if raw else []


def _float_param(request: HttpRequest, name: str,
                 default: float) -> float:
    raw = request.param(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise HttpError(400, f"bad float for {name!r}: {raw!r}") \
            from None


def build_router(state: GatewayState,
                 stats_values: Callable[[], Mapping[str, object]]
                 ) -> Router:
    """Wire every endpoint to ``state``; ``stats_values`` is the
    shell's live metrics snapshot (it owns the wall clock)."""

    def summary(request: HttpRequest, params: Dict[str, str]) -> Result:
        t, values = state.summary()
        return 200, [("summary", "cluster", t, values)]

    def hosts(request: HttpRequest, params: Dict[str, str]) -> Result:
        view = state.view
        payload: Dict[str, object] = {
            "count": len(view.hostnames),
            "nodes": state.folded_hosts()}
        if view.degraded:
            payload["degraded"] = True
            payload["stale_shards"] = ",".join(view.stale_shards)
            payload["staleness_s"] = view.staleness_s
        return 200, [("hosts", "cluster", view.sim_time, payload)]

    def host(request: HttpRequest, params: Dict[str, str]) -> Result:
        found = state.host(params["hostname"])
        if found is None:
            raise HttpError(404, f"unknown host {params['hostname']!r}")
        t, values = found
        return 200, [("host", params["hostname"], t, values)]

    def query(request: HttpRequest, params: Dict[str, str]) -> Result:
        metrics = _split_param(request, "metrics")
        try:
            t, rows = state.query(request.param("nodes"),
                                  metrics or None)
        except ValueError as exc:  # NodeSet parse errors surface as 400
            raise HttpError(400, f"bad nodes expression: {exc}") \
                from None
        return 200, [("host", hostname, t, values)
                     for hostname, values in rows]

    def events(request: HttpRequest, params: Dict[str, str]) -> Result:
        t, active = state.active_events()
        return 200, [("event", rule, t, {"rule": rule, "node": node})
                     for rule, node in active]

    def event_log(request: HttpRequest,
                  params: Dict[str, str]) -> Result:
        limit = int(_float_param(request, "limit", 100))
        entries = state.event_log(
            since=_float_param(request, "since", 0.0),
            node=request.param("node"), limit=limit)
        return 200, [("event", e["rule"], e["time"], e)  # type: ignore
                     for e in entries]

    def history(request: HttpRequest, params: Dict[str, str]) -> Result:
        hostname, metric = params["hostname"], params["metric"]
        subject = f"{hostname}/{metric}"
        t0 = request.param("t0")
        if t0 is not None:
            t1 = _float_param(request, "t1", state.view.sim_time)
            rows = state.history_window(hostname, metric,
                                        float(t0), t1)
            return 200, [("history", subject, t, {"value": v})
                         for t, v in rows]
        buckets = int(_float_param(request, "buckets", 60))
        graph = state.history_graph(hostname, metric, buckets=buckets)
        return 200, [("history", subject, center,
                      {"mean": mean, "min": lo, "max": hi})
                     for center, mean, lo, hi in graph]

    def shards(request: HttpRequest, params: Dict[str, str]) -> Result:
        view = state.view
        rows = state.shards()
        if view.degraded:
            for row in rows:
                row["degraded"] = True
                row["stale"] = row.get("name") in view.stale_shards
        return 200, [("shard", row["name"], view.sim_time, row)
                     for row in rows]

    def stats(request: HttpRequest, params: Dict[str, str]) -> Result:
        return 200, [("stats", "gateway", state.view.sim_time,
                      stats_values())]

    router = Router()
    router.add("/v1/summary", summary)
    router.add("/v1/hosts", hosts)
    router.add("/v1/hosts/{hostname}", host)
    router.add("/v1/query", query)
    router.add("/v1/events", events)
    router.add("/v1/events/log", event_log)
    router.add("/v1/history/{hostname}/{metric}", history)
    router.add("/v1/shards", shards)
    router.add("/stats", stats)
    # /v1/watch is registered by the shell: it owns sockets and queues.
    return router
