"""worxlint — AST-based static analysis enforcing this codebase's
architectural invariants (layer DAG, determinism, encapsulation,
subscriber safety, API surface).

The framework parses every module under the linted root **once**
(:mod:`repro.tooling.parse`), runs a registry of whole-program visitor
passes over the shared parse (:mod:`repro.tooling.passes`), and emits
typed :class:`~repro.tooling.findings.Finding` records with per-line
pragma suppression (``# worx: ok WORX103``) and a committed baseline
for grandfathered findings.  ``repro-cli lint`` is the operator entry
point; ``tests/test_tooling.py`` is the tier-1 gate.
"""

from repro.tooling.findings import (Finding, load_baseline,
                                    render_baseline, write_baseline)
from repro.tooling.layers import LAYER_MAP
from repro.tooling.parse import ParsedModule, parse_count, parse_tree
from repro.tooling.registry import (LintConfig, LintContext, LintPass,
                                    all_passes, get_passes, register)
from repro.tooling.runner import (JSON_SCHEMA_VERSION, LintResult,
                                  default_config, refresh_baseline,
                                  run_lint)

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LAYER_MAP",
    "LintConfig",
    "LintContext",
    "LintPass",
    "LintResult",
    "ParsedModule",
    "all_passes",
    "default_config",
    "get_passes",
    "load_baseline",
    "parse_count",
    "parse_tree",
    "refresh_baseline",
    "register",
    "render_baseline",
    "run_lint",
    "write_baseline",
]
