"""worxlint — AST-based static analysis enforcing this codebase's
architectural invariants (layer DAG, determinism, encapsulation,
subscriber safety, API surface) and, since the worxsan family
(WORX201-205), its concurrency contracts: execution-context thread
discipline, snapshot immutability, lock discipline, non-blocking
coroutines and shard ownership — plus the opt-in runtime sanitizer
(:mod:`repro.tooling.sanitizer`) that checks the same contracts
against the live process.

The framework parses every module under the linted root **once**
(:mod:`repro.tooling.parse`; unchanged files are additionally served
from an mtime+size cache across runs), runs a registry of
whole-program visitor passes over the shared parse
(:mod:`repro.tooling.passes`), and emits typed
:class:`~repro.tooling.findings.Finding` records with per-line pragma
suppression (``# worx: ok WORX103``), interprocedural lock
annotations (``# worx: holds lock``) and a committed baseline for
grandfathered findings.  ``repro-cli lint`` is the operator entry
point; ``tests/test_tooling.py`` is the tier-1 gate.
"""

from repro.tooling.concurrency import (CONTEXT_MAP, FROZEN_TYPES,
                                       LOCK_GUARDED, PUBLISHED_ATTRS,
                                       SHARD_ROOTS, SIM_OWNED)
from repro.tooling.findings import (Finding, load_baseline,
                                    render_baseline, write_baseline)
from repro.tooling.layers import LAYER_MAP
from repro.tooling.parse import (ParsedModule, cache_size, clear_cache,
                                 parse_count, parse_tree)
from repro.tooling.registry import (LintConfig, LintContext, LintPass,
                                    all_passes, get_passes, register)
from repro.tooling.runner import (JSON_SCHEMA_VERSION, LintResult,
                                  default_config, refresh_baseline,
                                  run_lint)
from repro.tooling.sanitizer import (FrozenDict, Sanitizer,
                                     SanitizerViolation,
                                     current_sanitizer, deep_freeze,
                                     install, uninstall)

__all__ = [
    "CONTEXT_MAP",
    "FROZEN_TYPES",
    "Finding",
    "FrozenDict",
    "JSON_SCHEMA_VERSION",
    "LAYER_MAP",
    "LOCK_GUARDED",
    "LintConfig",
    "LintContext",
    "LintPass",
    "LintResult",
    "PUBLISHED_ATTRS",
    "ParsedModule",
    "SHARD_ROOTS",
    "SIM_OWNED",
    "Sanitizer",
    "SanitizerViolation",
    "all_passes",
    "cache_size",
    "clear_cache",
    "current_sanitizer",
    "deep_freeze",
    "default_config",
    "get_passes",
    "install",
    "load_baseline",
    "parse_count",
    "parse_tree",
    "refresh_baseline",
    "register",
    "render_baseline",
    "run_lint",
    "uninstall",
    "write_baseline",
]
