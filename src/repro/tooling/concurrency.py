"""The declared concurrency contract of the ``repro`` codebase
(WORX201–WORX205 — the worxsan rule family).

Since the gateway (PR 6) the process hosts *real* threads: the sim
driver advances the kernel in slices, the asyncio serving loop answers
HTTP off published views, and the operator shell owns everything before
and after.  The invariants that make that safe were prose until this
module; now they are data the passes enforce:

* :data:`CONTEXT_MAP` — which execution context each bridge function
  runs in (WORX201 seeds; same-module call graphs propagate them).
  Contexts: ``sim`` (the SimDriver thread), ``serving`` (the asyncio
  loop thread), ``coroutine`` (async handlers — same thread as
  ``serving``), ``shell`` (the operator's main thread).
* :data:`SIM_OWNED` — per file, instance attributes that belong to the
  simulation thread.  A serving-context function may touch them only
  inside a ``with <lock>`` block (WORX201).
* :data:`LOCK_GUARDED` — per file, attribute chains that must only be
  accessed under the named lock (WORX203), or — with lock name ``""``
  — replaced wholesale and never mutated in place (the federation
  owner-map discipline).
* :data:`SHARD_ROOTS` — path prefixes where the shard-ownership rule
  (WORX205) applies: code there must never hand one shard's
  server/store/engine to another shard or upward to core.
* :data:`FROZEN_TYPES` / :data:`PUBLISHED_ATTRS` — the immutable-after-
  publish value types and the attributes that hold them (WORX202 taint
  roots).

Keep this table in sync with the DESIGN.md "execution-context model"
section when a thread boundary moves.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping

__all__ = ["CONTEXT_MAP", "SIM_OWNED", "LOCK_GUARDED", "SHARD_ROOTS",
           "FANOUT_GUARDED", "FROZEN_TYPES", "PUBLISHED_ATTRS"]

#: ``"rel/path.py"`` (every function in the file) or
#: ``"rel/path.py::Qual.name"`` -> execution context.
CONTEXT_MAP: Mapping[str, str] = {
    # The sim driver thread: advances the kernel, publishes views,
    # pushes watch deltas through the subscription bus.
    "repro/gateway/shell.py::SimDriver.run": "sim",
    "repro/gateway/state.py::GatewayState.refresh": "sim",
    "repro/gateway/state.py::GatewayState._capture": "sim",
    "repro/gateway/watch.py::WatchHub._on_update": "sim",
    "repro/gateway/watch.py::WatchClient.push": "sim",
    # The asyncio serving thread: hot endpoints off the frozen view,
    # cold endpoints through the slice lock, watch-buffer drains.
    "repro/gateway/routes.py": "serving",
    "repro/gateway/state.py::GatewayState.summary": "serving",
    "repro/gateway/state.py::GatewayState.host": "serving",
    "repro/gateway/state.py::GatewayState.hostnames": "serving",
    "repro/gateway/state.py::GatewayState.folded_hosts": "serving",
    "repro/gateway/state.py::GatewayState.query": "serving",
    "repro/gateway/state.py::GatewayState.active_events": "serving",
    "repro/gateway/state.py::GatewayState.shards": "serving",
    "repro/gateway/state.py::GatewayState.history_graph": "serving",
    "repro/gateway/state.py::GatewayState.history_window": "serving",
    "repro/gateway/state.py::GatewayState.event_log": "serving",
    "repro/gateway/shell.py::GatewayService.stats_values": "serving",
    "repro/gateway/watch.py::WatchClient.drain": "serving",
    "repro/gateway/watch.py::WatchHub.register": "serving",
    "repro/gateway/watch.py::WatchHub.unregister": "serving",
    # The operator shell (main thread, before/after the driver runs).
    "repro/cli.py": "shell",
}

#: per rel path: instance-attribute prefixes owned by the sim thread.
SIM_OWNED: Mapping[str, FrozenSet[str]] = {
    # Everything behind GatewayState.server is live simulation state;
    # serving code reads the published view or takes the slice lock.
    "repro/gateway/state.py": frozenset({"server"}),
}

#: per rel path: attribute chain -> guarding lock attribute ("" means
#: replace-only: the structure is swapped wholesale, never mutated).
LOCK_GUARDED: Mapping[str, Mapping[str, str]] = {
    "repro/gateway/state.py": {
        "server.store": "lock",
        "server.engine": "lock",
        "server.history": "lock",
        "server.kernel": "lock",
    },
    # The owner map is read lock-free on the ingest hot path; safety
    # rests on membership changes replacing the dict, never editing it.
    "repro/federation/server.py": {"_owner": ""},
}

#: path prefixes whose code the shard-ownership rule (WORX205) covers.
SHARD_ROOTS: FrozenSet[str] = frozenset({"repro/federation/"})

#: the federation fan-out modules (WORX107): every ``.server`` read in
#: these files must run through the breaker-guarded ``call(...)`` idiom
#: so a dead shard degrades reads instead of crashing them.
FANOUT_GUARDED: FrozenSet[str] = frozenset({
    "repro/federation/views.py", "repro/federation/remote.py",
    "repro/federation/rollup.py"})

#: value types that are immutable once published (WORX202 flags any
#: mutation reachable from them; their own class bodies are exempt).
FROZEN_TYPES: FrozenSet[str] = frozenset({
    "PublishedView", "Snapshot", "FederatedSnapshot", "Update",
    "Sample"})

#: attribute names that hold the published view: reading ``<x>.view``
#: (or calling ``<x>.snapshot()``) taints the result for WORX202.
PUBLISHED_ATTRS: FrozenSet[str] = frozenset({"view"})
