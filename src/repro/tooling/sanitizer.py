"""worxsan runtime mode: the dynamic half of the WORX2xx family.

The static passes prove discipline over the *code*; this module checks
the same contracts against the *running process*, so the rules are
validated against ground truth:

* **published-view freezing** — :meth:`Sanitizer.freeze_view` replaces
  a published view's mutable containers with deep-frozen equivalents
  (:class:`FrozenDict` raises on every mutator), so any WORX202
  violation that slips past the dataflow pass raises
  :class:`SanitizerViolation` the moment it executes;
* **lock checkpoints** — :meth:`Sanitizer.assert_locked` backs the
  ``# worx: holds <lock>`` annotations: code annotated as
  caller-locked asserts the lock really is held when the sanitizer is
  active;
* **per-thread access logs** — :meth:`Sanitizer.record` keeps a
  bounded trail of ``(thread, tag, detail)`` tuples the golden-trace
  tests read to prove which thread touched which boundary.

Activation is opt-in and costs one ``is None`` check per call site
when off: export ``WORXSAN=1`` (picked up at import), or call
:func:`install` / :func:`uninstall` from a test.  ``make sanitize``
runs a tier-1 subset this way.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Deque, List, Optional, Tuple

__all__ = ["SanitizerViolation", "FrozenDict", "deep_freeze",
           "Sanitizer", "current_sanitizer", "install", "uninstall"]


class SanitizerViolation(AssertionError):
    """A runtime breach of a worxsan contract (frozen-view mutation,
    lock checkpoint failure).  Subclasses AssertionError so test
    harnesses treat it as a hard failure, never a skippable error."""


def _frozen(self, *args, **kwargs):
    raise SanitizerViolation(
        "mutation of a sanitizer-frozen published mapping: snapshots "
        "are immutable after publish (WORX202)")


class FrozenDict(dict):
    """A dict whose every mutator raises :class:`SanitizerViolation`.

    Reads stay native-speed C dict lookups — the serving hot path is
    unchanged — but ``d[k] = v``, ``update``, ``pop`` ... all raise.
    """

    __setitem__ = _frozen
    __delitem__ = _frozen
    clear = _frozen
    pop = _frozen
    popitem = _frozen
    setdefault = _frozen
    update = _frozen
    __ior__ = _frozen


def deep_freeze(value):
    """Recursively convert mutable containers to raising/immutable
    ones: dict -> :class:`FrozenDict`, list -> tuple, set -> frozenset.
    Scalars and already-immutable values pass through unchanged."""
    if isinstance(value, dict):
        return FrozenDict((k, deep_freeze(v)) for k, v in value.items())
    if isinstance(value, list):
        return tuple(deep_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(deep_freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(deep_freeze(v) for v in value)
    return value


class Sanitizer:
    """One activation of worxsan runtime mode."""

    def __init__(self, *, log_limit: int = 4096):
        self.frozen_views = 0
        self.lock_checks = 0
        self._log: Deque[Tuple[str, str, str]] = deque(maxlen=log_limit)
        self._log_lock = threading.Lock()

    # -- access log ----------------------------------------------------------
    def record(self, tag: str, detail: str = "") -> None:
        """Append ``(current thread name, tag, detail)`` to the log."""
        entry = (threading.current_thread().name, tag, detail)
        with self._log_lock:
            self._log.append(entry)

    def accesses(self, tag: Optional[str] = None
                 ) -> List[Tuple[str, str, str]]:
        """The recorded trail, optionally filtered by tag."""
        with self._log_lock:
            entries = list(self._log)
        if tag is None:
            return entries
        return [e for e in entries if e[1] == tag]

    def threads_for(self, tag: str) -> List[str]:
        """Distinct thread names that hit ``tag``, in first-hit order."""
        seen: List[str] = []
        for thread, _tag, _detail in self.accesses(tag):
            if thread not in seen:
                seen.append(thread)
        return seen

    # -- published-view freezing ---------------------------------------------
    def freeze_view(self, view) -> None:
        """Deep-freeze the mutable containers of a published view in
        place (``__slots__`` attributes are reassigned to their frozen
        equivalents), so post-publish mutation raises instead of
        racing."""
        for attr in ("summary", "events", "hostnames"):
            if hasattr(view, attr):
                setattr(view, attr, deep_freeze(getattr(view, attr)))
        self.frozen_views += 1
        self.record("freeze", type(view).__name__)

    # -- lock checkpoints ----------------------------------------------------
    def assert_locked(self, lock, where: str) -> None:
        """Checkpoint for ``# worx: holds <lock>`` annotations: the
        lock must be held when control reaches ``where``.  (A plain
        ``threading.Lock`` has no owner, so this asserts *held by
        someone* — the annotated call chains all acquire before
        calling, which is exactly the claim being checked.)"""
        self.lock_checks += 1
        if not lock.locked():
            raise SanitizerViolation(
                f"lock checkpoint failed at {where}: caller was "
                f"annotated '# worx: holds' but the lock is free "
                f"(WORX203)")
        self.record("lock", where)


#: the active sanitizer, or None (the common, zero-overhead case).
_ACTIVE: Optional[Sanitizer] = None
if os.environ.get("WORXSAN", "").strip() not in ("", "0"):
    _ACTIVE = Sanitizer()


def current_sanitizer() -> Optional[Sanitizer]:
    """The installed sanitizer, or ``None`` when worxsan is off."""
    return _ACTIVE


def install(sanitizer: Optional[Sanitizer] = None) -> Sanitizer:
    """Activate worxsan (tests use this; the env flag covers whole
    runs).  Returns the now-active sanitizer."""
    global _ACTIVE
    _ACTIVE = sanitizer if sanitizer is not None else Sanitizer()
    return _ACTIVE


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None
