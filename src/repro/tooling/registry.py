"""Pass registry and the whole-program context passes run against.

A pass is a class with a ``rule_id`` and a ``run(ctx)`` generator; the
``@register`` decorator adds it to the global registry in definition
order.  Passes are *whole-program*: they see every parsed module at once
(layering needs the import graph, API-surface needs foreign ``__all__``
lists), and they must never re-read or re-parse a file — everything they
need is on the :class:`LintContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Type)

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule

__all__ = ["LintConfig", "LintContext", "LintPass", "register",
           "all_passes", "get_passes"]


@dataclass(frozen=True)
class LintConfig:
    """What to lint and under which policy."""

    root: Path
    #: root package name the layer rules apply to (imports of anything
    #: else — stdlib, third-party — are out of scope for WORX101/105).
    package: str = "repro"
    #: first path component under ``package`` -> layer number; ``""``
    #: names the package facade (``<package>/__init__.py``) and plain
    #: top-level modules default to the facade layer unless listed.
    layers: Mapping[str, int] = field(default_factory=dict)
    #: rel paths (files, or directory prefixes ending in ``/``) exempt
    #: from the determinism rule — the interactive shell that is allowed
    #: to look at wall clocks.
    determinism_shell: FrozenSet[str] = frozenset()
    #: rel paths exempt from the swallowed-exception rule (WORX106) —
    #: declared outermost handler shells that may defuse anything.
    handler_shells: FrozenSet[str] = frozenset()
    #: optional committed baseline of grandfathered finding keys.
    baseline: Optional[Path] = None
    #: run only these rule ids (``None`` = every registered pass).
    rules: Optional[FrozenSet[str]] = None
    # -- worxsan concurrency policy (WORX201-205) ---------------------------
    #: ``"rel/path.py"`` or ``"rel/path.py::Qual.name"`` -> execution
    #: context (``sim`` / ``serving`` / ``coroutine`` / ``shell``) — the
    #: WORX201 seeds that call-graph propagation grows from.
    contexts: Mapping[str, str] = field(default_factory=dict)
    #: per rel path: ``self.``-rooted attribute prefixes owned by the
    #: sim thread; serving code may touch them only under a lock.
    sim_owned: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    #: per rel path: attribute chain -> guarding lock name (WORX203);
    #: the empty string means replace-only (swap, never mutate in place).
    lock_guarded: Mapping[str, Mapping[str, str]] = field(
        default_factory=dict)
    #: class names that are immutable once published (WORX202 taint).
    frozen_types: FrozenSet[str] = frozenset(
        {"PublishedView", "Snapshot"})
    #: attribute names whose read yields a published (frozen) value.
    published_attrs: FrozenSet[str] = frozenset({"view"})
    #: rel-path prefixes where shard-ownership isolation (WORX205) holds.
    shard_roots: FrozenSet[str] = frozenset()
    #: rel paths where every ``.server`` access must go through the
    #: breaker-guarded ``call(...)`` idiom (WORX107) — the federation
    #: fan-out modules that must degrade, not raise, on a dead shard.
    fanout_guarded: FrozenSet[str] = frozenset()
    # -- run mechanics ------------------------------------------------------
    #: bypass the parsed-module cache (``--no-cache``).
    no_cache: bool = False
    #: optional pickle file persisting the parse cache across runs.
    cache_path: Optional[Path] = None
    #: when set, only findings in these rel paths are reported (the
    #: whole tree is still parsed — passes are whole-program).
    only_paths: Optional[FrozenSet[str]] = None


class LintContext:
    """Everything a pass may consult: the config and the shared parse."""

    def __init__(self, config: LintConfig,
                 modules: Sequence[ParsedModule]):
        self.config = config
        self.modules: List[ParsedModule] = list(modules)
        self.by_module: Dict[str, ParsedModule] = {
            m.module: m for m in self.modules}

    # -- layer helpers -------------------------------------------------------
    def component(self, module: str) -> Optional[str]:
        """First path component of ``module`` under the root package:
        ``repro.sim.kernel`` -> ``sim``; the facade itself -> ``""``;
        ``None`` when the module is outside the root package."""
        package = self.config.package
        if module == package:
            return ""
        if not module.startswith(package + "."):
            return None
        return module[len(package) + 1:].split(".", 1)[0]

    def layer_of(self, module: str) -> Optional[int]:
        component = self.component(module)
        if component is None:
            return None
        layers = self.config.layers
        if component in layers:
            return layers[component]
        # Unlisted top-level modules (and the facade) sit at the top.
        if component == "" or "." not in module[len(self.config.package) + 1:]:
            return layers.get("", max(layers.values(), default=0))
        return None

    def resolve_import(self, target: str) -> Optional[ParsedModule]:
        """Map an import target to a parsed module: exact module first,
        then its containing package (``from repro.sim import SimKernel``
        resolves to ``repro.sim``'s ``__init__``)."""
        if target in self.by_module:
            return self.by_module[target]
        if "." in target:
            return self.by_module.get(target.rsplit(".", 1)[0])
        return None


class LintPass:
    """Base class: subclasses set the rule metadata and yield findings."""

    rule_id: str = "WORX000"
    title: str = ""
    severity: str = "error"

    def finding(self, module: ParsedModule, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=module.rel,
                       line=getattr(node, "lineno", 1),
                       rule_id=self.rule_id, message=message,
                       severity=self.severity)

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: List[Type[LintPass]] = []


def register(cls: Type[LintPass]) -> Type[LintPass]:
    """Class decorator: add a pass to the global registry."""
    _REGISTRY.append(cls)
    return cls


def all_passes() -> List[LintPass]:
    """Fresh instances of every registered pass, ordered by rule id."""
    import repro.tooling.passes  # noqa: F401  (triggers registration)
    return [cls() for cls in sorted(_REGISTRY,
                                    key=lambda c: c.rule_id)]


def get_passes(rules: Optional[Iterable[str]] = None) -> List[LintPass]:
    passes = all_passes()
    if rules is None:
        return passes
    wanted = {rule.upper() for rule in rules}
    return [p for p in passes if p.rule_id in wanted]
