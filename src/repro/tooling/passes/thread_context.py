"""WORX201 — thread discipline.

The gateway era gave the process real concurrent threads: the sim
driver advances the kernel and publishes views, the asyncio serving
loop answers HTTP, the operator shell brackets both.  Which context a
function runs in is declared in ``LintConfig.contexts`` (see
``repro.tooling.concurrency`` for the repo's own map) and propagated
along the same-module call graph: a helper called from both a sim-side
and a serving-side function carries *both* contexts.

Flagged:

* a function reachable from **both** the sim thread and the serving
  thread that mutates shared state non-atomically outside a
  ``with <lock>`` block — augmented assignment on attributes,
  subscript stores into attribute-held containers, in-place mutator
  calls (``.append``/``.update``/...) on attribute-held receivers.  A
  plain single attribute rebind (``self.view = v``) stays legal: that
  is the sanctioned atomic-publish idiom.
* a **serving-only** function touching instance state the config
  declares sim-owned (``LintConfig.sim_owned`` attribute prefixes)
  outside a lock.  Serving code reads the published view or takes the
  slice lock; it never peeks at live simulation objects bare.

A ``# worx: holds <lock>`` annotation on the ``def`` line marks the
whole body as lock-protected (the caller acquired it).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register
from repro.tooling.passes._threads import (FuncInfo, attr_chain,
                                           function_index, iter_with_lock,
                                           mutating_receiver,
                                           propagate_contexts,
                                           seed_contexts)

__all__ = ["ThreadDisciplinePass"]

#: execution context -> OS thread it runs on (coroutines share the
#: serving loop's thread).
_THREAD_OF = {"sim": "sim", "serving": "serve", "coroutine": "serve",
              "shell": "shell"}


def _threads(info: FuncInfo) -> Set[str]:
    return {_THREAD_OF[c] for c in info.contexts if c in _THREAD_OF}


def _contains_attribute(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Attribute) for n in ast.walk(node))


@register
class ThreadDisciplinePass(LintPass):
    rule_id = "WORX201"
    title = "cross-thread access to non-published mutable state"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        contexts = dict(ctx.config.contexts)
        sim_owned = ctx.config.sim_owned
        if not contexts and not sim_owned:
            return
        for module in ctx.modules:
            yield from self._check_module(module, contexts,
                                          sim_owned.get(module.rel))

    def _check_module(self, module: ParsedModule,
                      contexts: Dict[str, str],
                      owned) -> Iterator[Finding]:
        index = function_index(module)
        seed_contexts(module, index, contexts)
        propagate_contexts(index)
        for info in index.values():
            threads = _threads(info)
            if {"sim", "serve"} <= threads:
                yield from self._check_conflict(module, info)
            elif "serve" in threads and "sim" not in threads and owned:
                yield from self._check_sim_owned(module, info, owned)

    # -- a function both threads run must mutate atomically ------------------
    def _check_conflict(self, module: ParsedModule,
                        info: FuncInfo) -> Iterator[Finding]:
        held = module.held_lock(info.node) is not None
        for node, locked in iter_with_lock(info.node, initial=held):
            if locked:
                continue
            offender = self._nonatomic_mutation(node)
            if offender is not None:
                yield self.finding(
                    module, node,
                    f"function '{info.qualname}' runs on both the sim "
                    f"and serving threads but mutates {offender} "
                    f"non-atomically outside a lock")

    def _nonatomic_mutation(self, node: ast.AST):
        """A description of the shared-state mutation, or ``None``."""
        if isinstance(node, ast.AugAssign) \
                and _contains_attribute(node.target):
            chain = attr_chain(node.target)
            return "'%s'" % ".".join(chain) if chain \
                else "an attribute-held value"
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and _contains_attribute(target.value):
                    chain = attr_chain(target.value)
                    return ("an entry of '%s'" % ".".join(chain)
                            if chain else "an attribute-held container")
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and _contains_attribute(target.value):
                    return "an attribute-held container"
        receiver = mutating_receiver(node)
        if receiver is not None:
            chain = attr_chain(receiver)
            if chain is not None and len(chain) >= 2:
                return "'%s'" % ".".join(chain)
        return None

    # -- serving-only code must not touch sim-owned attributes ---------------
    def _check_sim_owned(self, module: ParsedModule, info: FuncInfo,
                         owned) -> Iterator[Finding]:
        held = module.held_lock(info.node) is not None
        seen: Set[Tuple[int, str]] = set()
        for node, locked in iter_with_lock(info.node, initial=held):
            if locked or not isinstance(node, ast.Attribute):
                continue
            chain = attr_chain(node)
            if chain is None or chain[0] != "self":
                continue
            rest = ".".join(chain[1:])
            for prefix in owned:
                if rest == prefix or rest.startswith(prefix + "."):
                    key = (node.lineno, prefix)
                    if key in seen:
                        break
                    seen.add(key)
                    yield self.finding(
                        module, node,
                        f"serving-context function '{info.qualname}' "
                        f"touches sim-owned state 'self.{prefix}' "
                        f"without holding the slice lock — read the "
                        f"published view or take the lock")
                    break
