"""WORX102 — determinism.

Simulation code must take time from the :class:`SimKernel` and
randomness from :mod:`repro.sim.rng` named streams: a single wall-clock
read or global-RNG draw makes every benchmark in EXPERIMENTS.md
unreproducible and every fleet-scale bug report unreplayable.

Flagged (outside the configured shell allowlist):

* ``time.time/.time_ns/.perf_counter/.monotonic/.process_time`` (+
  ``_ns`` variants) and their ``from time import ...`` forms
* ``datetime.datetime.now/.utcnow/.today`` and ``date.today``
* the stdlib ``random`` module in any form (import alone is flagged —
  there is no deterministic use of the *global* RNG)
* ``os.urandom``, ``uuid.uuid1``, ``uuid.uuid4``
* numpy's legacy global RNG (``np.random.seed/rand/randint/...``) and a
  *seedless* ``np.random.default_rng()`` — with an explicit seed or
  ``SeedSequence`` argument ``default_rng`` is the sanctioned way to
  build streams and is allowed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register

__all__ = ["DeterminismPass"]

_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime"})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_NP_GLOBAL_RNG = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "bytes",
    "get_state", "set_state"})
_UUID_FNS = frozenset({"uuid1", "uuid4"})


def _in_shell(module: ParsedModule, shell: frozenset) -> bool:
    for entry in shell:
        if module.rel == entry:
            return True
        if entry.endswith("/") and module.rel.startswith(entry):
            return True
    return False


class _Bindings:
    """Which local names are the modules/classes we police."""

    def __init__(self) -> None:
        self.time_mods: Set[str] = set()
        self.os_mods: Set[str] = set()
        self.uuid_mods: Set[str] = set()
        self.random_mods: Set[str] = set()
        #: bindings of the numpy package itself (``import numpy as np``)
        self.numpy_mods: Set[str] = set()
        #: bindings that *are* numpy.random (``from numpy import random``)
        self.np_random_mods: Set[str] = set()
        self.datetime_mods: Set[str] = set()
        #: names bound to datetime.datetime / datetime.date classes
        self.datetime_classes: Set[str] = set()
        #: direct function bindings -> offending description
        self.direct: Dict[str, str] = {}


def _collect_bindings(tree: ast.Module) -> _Bindings:
    b = _Bindings()
    mod_sets = {"time": b.time_mods, "os": b.os_mods,
                "uuid": b.uuid_mods, "random": b.random_mods,
                "numpy": b.numpy_mods, "datetime": b.datetime_mods}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                binding = alias.asname or root
                if alias.name == "numpy.random" and alias.asname:
                    b.np_random_mods.add(alias.asname)
                elif root in mod_sets:
                    mod_sets[root].add(binding)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            source = node.module or ""
            for alias in node.names:
                binding = alias.asname or alias.name
                if source == "time" and alias.name in _TIME_FNS:
                    b.direct[binding] = f"time.{alias.name}"
                elif source == "datetime" and alias.name in ("datetime",
                                                             "date"):
                    b.datetime_classes.add(binding)
                elif source == "os" and alias.name == "urandom":
                    b.direct[binding] = "os.urandom"
                elif source == "uuid" and alias.name in _UUID_FNS:
                    b.direct[binding] = f"uuid.{alias.name}"
                elif source == "random":
                    b.direct[binding] = f"random.{alias.name}"
                elif source == "numpy" and alias.name == "random":
                    b.np_random_mods.add(binding)
    return b


def _attr_chain(node: ast.AST) -> Optional[list]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


@register
class DeterminismPass(LintPass):
    rule_id = "WORX102"
    title = "simulation code must not read wall clocks or global RNGs"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        shell = ctx.config.determinism_shell
        for module in ctx.modules:
            if _in_shell(module, shell):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        b = _collect_bindings(module.tree)
        for node in ast.walk(module.tree):
            # ``from random import x`` / ``from time import time`` bind
            # the hazard directly: flag the import itself.
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    binding = alias.asname or alias.name
                    if binding in b.direct:
                        yield self.finding(
                            module, node,
                            f"non-deterministic import "
                            f"{b.direct[binding]}: use SimKernel time / "
                            f"repro.sim.rng streams")
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "random":
                        yield self.finding(
                            module, node,
                            "stdlib random is the process-global RNG: "
                            "draw from repro.sim.rng named streams")
                continue
            if not isinstance(node, ast.Attribute):
                continue
            chain = _attr_chain(node)
            if chain is None or len(chain) < 2:
                continue
            yield from self._check_chain(module, node, chain, b)
        for call in _seedless_default_rng(module.tree, b):
            yield self.finding(
                module, call,
                "seedless np.random.default_rng() is entropy-seeded: "
                "pass an explicit seed or SeedSequence")

    def _check_chain(self, module: ParsedModule, node: ast.Attribute,
                     chain: list, b: _Bindings) -> Iterator[Finding]:
        base, attr = chain[0], chain[-1]
        # time.<clock>()
        if base in b.time_mods and len(chain) == 2 \
                and attr in _TIME_FNS:
            yield self.finding(
                module, node,
                f"wall-clock read time.{attr}: simulation code must use "
                f"SimKernel.now")
        # os.urandom / uuid.uuid4
        elif base in b.os_mods and len(chain) == 2 \
                and attr == "urandom":
            yield self.finding(
                module, node,
                "os.urandom is non-deterministic: draw bytes from a "
                "repro.sim.rng stream")
        elif base in b.uuid_mods and len(chain) == 2 \
                and attr in _UUID_FNS:
            yield self.finding(
                module, node,
                f"uuid.{attr} is non-deterministic: derive ids from "
                f"seeded state")
        # random.<anything>
        elif base in b.random_mods and len(chain) == 2:
            yield self.finding(
                module, node,
                f"global RNG random.{attr}: draw from repro.sim.rng "
                f"named streams")
        # datetime.datetime.now() / datetime.now() / date.today()
        elif attr in _DATETIME_FNS and (
                (len(chain) == 3 and base in b.datetime_mods
                 and chain[1] in ("datetime", "date"))
                or (len(chain) == 2 and base in b.datetime_classes)):
            yield self.finding(
                module, node,
                f"wall-clock read {'.'.join(chain)}: simulation code "
                f"must use SimKernel.now")
        # numpy's legacy global RNG: np.random.<fn> or nprand.<fn>
        elif attr in _NP_GLOBAL_RNG and (
                (len(chain) == 3 and base in b.numpy_mods
                 and chain[1] == "random")
                or (len(chain) == 2 and base in b.np_random_mods)):
            yield self.finding(
                module, node,
                f"numpy global RNG {'.'.join(chain)}: use the "
                f"Generator streams from repro.sim.rng")


def _seedless_default_rng(tree: ast.Module,
                          b: _Bindings) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None or chain[-1] != "default_rng" \
                or node.args or node.keywords:
            continue
        if (len(chain) == 3 and chain[0] in b.numpy_mods
                and chain[1] == "random") \
                or (len(chain) == 2 and chain[0] in b.np_random_mods):
            yield node
