"""WORX205 — shard-ownership escape.

The federation's scaling argument (PR 7) is *exclusive* ownership:
each shard's ``ClusterWorXServer`` — and the store, history, engine,
health tracker and recovery orchestrator hanging off it — is touched
by that shard alone.  Rebalancing migrates *data* (copied values,
exported series), never live organs; the moment shard B holds a
reference into shard A's server, every per-shard invariant (rollup
cache coherence, subscriber bookkeeping, owner-map routing) silently
dies.

Within the configured ``LintConfig.shard_roots`` path prefixes,
flagged:

* **handing an organ across**: calling through one base's ``.server``
  with an argument that is another base's raw ``.server`` /
  ``.server.<organ>`` chain (or a local alias of one) —
  ``target.server.adopt(source.server.store)``.  Call *results* are
  clean: ``dict(source.store.get(h))`` and ``history.export_host(h)``
  are the sanctioned copy-out migration idiom.
* **storing a foreign organ**: assigning such a chain onto an object
  attribute (``self.fast_path = shard.server.store``).
* **returning a raw organ** from a public function/method — federated
  views merge *data* at the edge; they do not leak live sub-servers.
  (Deeper chains — ``shard.server.engine.rules`` — read attributes
  *of* an organ and are not escapes of the organ itself.)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register
from repro.tooling.passes._threads import attr_chain, iter_own_nodes

__all__ = ["ShardOwnershipPass"]

#: the per-shard sub-servers whose escape breaks exclusive ownership.
_ORGANS = frozenset({"store", "history", "engine", "health", "recovery"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _organ_chain(chain) -> bool:
    """Is this chain exactly ``X...server`` or ``X...server.<organ>``?
    (the raw handle — deeper chains read an organ's attributes)."""
    if chain is None or "server" not in chain[1:]:
        return False
    i = chain.index("server", 1)
    if len(chain) == i + 1:
        return True
    return len(chain) == i + 2 and chain[i + 1] in _ORGANS


def _root(chain) -> Optional[str]:
    return chain[0] if chain else None


@register
class ShardOwnershipPass(LintPass):
    rule_id = "WORX205"
    title = "one shard's server/organs handed outside its owner"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        roots = ctx.config.shard_roots
        if not roots:
            return
        for module in ctx.modules:
            if any(module.rel.startswith(prefix) for prefix in roots):
                yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, _FUNC_NODES):
                yield from self._check_function(module, node)

    def _check_function(self, module: ParsedModule,
                        func: ast.AST) -> Iterator[Finding]:
        #: local names aliasing some base's raw organ: name -> base.
        aliases = {}
        public = not func.name.startswith("_")
        for stmt in _stmts_in_order(func):
            # track simple aliases first: ``store = shard.server.store``
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                chain = attr_chain(stmt.value)
                if _organ_chain(chain):
                    aliases[stmt.targets[0].id] = chain[0]
                else:
                    aliases.pop(stmt.targets[0].id, None)
            yield from self._check_stmt(module, func, stmt, aliases,
                                        public)

    def _check_stmt(self, module: ParsedModule, func: ast.AST,
                    stmt: ast.stmt, aliases, public: bool
                    ) -> Iterator[Finding]:
        # rule: storing a foreign organ on an object attribute
        if isinstance(stmt, ast.Assign):
            chain = attr_chain(stmt.value)
            if _organ_chain(chain) or (
                    isinstance(stmt.value, ast.Name)
                    and stmt.value.id in aliases):
                for target in stmt.targets:
                    if isinstance(target, ast.Attribute):
                        yield self.finding(
                            module, stmt,
                            f"'{func.name}' stores a live shard organ "
                            f"('{_render(stmt.value)}') on an object: "
                            f"shard servers are owned exclusively — "
                            f"copy the data out instead")
        # rule: returning a raw organ from a public function
        if public and isinstance(stmt, ast.Return) \
                and stmt.value is not None:
            chain = attr_chain(stmt.value)
            if _organ_chain(chain):
                yield self.finding(
                    module, stmt,
                    f"public '{func.name}' returns the raw shard organ "
                    f"'{_render(stmt.value)}': merge/copy the data at "
                    f"the edge instead of leaking the live handle")
        # rule: passing one shard's organ into another shard's server
        # (scan only this statement's own expressions — nested
        # statements are visited on their own turn)
        for node in _own_calls(stmt):
            recv_chain = attr_chain(node.func)
            if recv_chain is None or "server" not in recv_chain[1:]:
                continue
            recv_root = _root(recv_chain)
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                arg_chain = attr_chain(arg)
                arg_root = None
                if _organ_chain(arg_chain):
                    arg_root = _root(arg_chain)
                elif isinstance(arg, ast.Name) and arg.id in aliases:
                    arg_root = aliases[arg.id]
                if arg_root is not None and arg_root != recv_root:
                    yield self.finding(
                        module, node,
                        f"'{func.name}' hands '{arg_root}'-owned live "
                        f"state into '{recv_root}'s server: shards "
                        f"never share organs — migrate copied data "
                        f"(dict(...) / export_host) instead")


def _own_calls(stmt: ast.stmt):
    """Call nodes in this statement's immediate expressions (the header
    of a compound statement counts; its nested statements do not)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            for node in ast.walk(child):
                if isinstance(node, ast.Call):
                    yield node
        elif isinstance(child, (ast.withitem, ast.keyword)):
            for node in ast.walk(child):
                if isinstance(node, ast.Call):
                    yield node


def _stmts_in_order(func: ast.AST):
    """Statements lexically in ``func``, nested scopes excluded,
    source order (so alias tracking sees definitions first)."""
    out = []
    for node in iter_own_nodes(func):
        if isinstance(node, ast.stmt):
            out.append(node)
    return sorted(out, key=lambda n: (n.lineno, n.col_offset))


def _render(node: ast.AST) -> str:
    chain = attr_chain(node)
    return ".".join(chain) if chain else "<expr>"
