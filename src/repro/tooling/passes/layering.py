"""WORX101 — the layer DAG.

Two checks over the shared parse:

* **Direction.**  Every import of a root-package module must target a
  layer at or below the importer's own (same package is always fine).
  Function-local imports count too: deferring an import changes *when*
  a dependency loads, not whether it exists.
* **Cycles.**  The module-level import graph (top-level imports only,
  resolved against the parsed tree) must be acyclic.  One finding is
  emitted per strongly-connected component, anchored at its first module
  in path order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.tooling.findings import Finding
from repro.tooling.passes._imports import iter_imports
from repro.tooling.registry import LintContext, LintPass, register

__all__ = ["LayeringPass"]


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC, iterative; only components of size > 1 returned."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            visit(node)
    return sccs


def _edge_targets(ctx, imp) -> Iterator[str]:
    """Modules an import statement actually binds.  ``from pkg import
    sub`` depends on the *submodule* when ``pkg.sub`` is one — charging
    the edge to the package ``__init__`` would manufacture false cycles
    for the idiomatic ``from repro.procfs import handlers`` form."""
    if imp.is_from and imp.names:
        for name in imp.names:
            sub = f"{imp.target}.{name.name}"
            if sub in ctx.by_module:
                yield sub
            else:
                resolved = ctx.resolve_import(imp.target)
                if resolved is not None:
                    yield resolved.module
    else:
        resolved = ctx.resolve_import(imp.target)
        if resolved is not None:
            yield resolved.module


@register
class LayeringPass(LintPass):
    rule_id = "WORX101"
    title = "imports must respect the declared layer map"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        graph: Dict[str, Set[str]] = {}
        edge_lines: Dict[Tuple[str, str], int] = {}
        for module in ctx.modules:
            importer_layer = ctx.layer_of(module.module)
            importer_component = ctx.component(module.module)
            reported_unmapped = False
            for imp in iter_imports(module):
                target_component = ctx.component(imp.target)
                if target_component is None:
                    continue  # stdlib / third-party: out of scope
                if (importer_layer is None and importer_component
                        is not None and not reported_unmapped):
                    reported_unmapped = True
                    yield self.finding(
                        module, imp,
                        f"package {importer_component!r} is missing from "
                        f"the layer map; add it to "
                        f"repro.tooling.layers.LAYER_MAP")
                    continue
                # -- direction -------------------------------------------
                target_layer = ctx.layer_of(imp.target)
                if (importer_layer is not None
                        and target_layer is not None
                        and importer_component != target_component
                        and target_layer > importer_layer):
                    yield self.finding(
                        module, imp,
                        f"layer violation: {module.module} (layer "
                        f"{importer_layer}, {importer_component or 'facade'}) "
                        f"imports {imp.target} (layer {target_layer}, "
                        f"{target_component or 'facade'}); dependencies "
                        f"must point down the layer DAG")
                # -- cycle graph (top-level imports only) ----------------
                if imp.top_level:
                    for dep in _edge_targets(ctx, imp):
                        if dep == module.module:
                            continue
                        graph.setdefault(module.module, set()).add(dep)
                        edge_lines.setdefault((module.module, dep),
                                              imp.lineno)

        for component in _strongly_connected(graph):
            first = component[0]
            module = ctx.by_module[first]
            members = set(component)
            line = min((edge_lines[(first, succ)]
                        for succ in graph.get(first, ())
                        if succ in members
                        and (first, succ) in edge_lines), default=1)
            yield Finding(
                path=module.rel, line=line, rule_id=self.rule_id,
                message=("import cycle: " + " -> ".join(component)
                         + f" -> {first}"),
                severity=self.severity)
