"""Shared import extraction for the whole-program passes.

One walk per module yields every ``import`` / ``from ... import`` with
its resolved absolute target, the imported names, and whether the
statement executes at module top level (function-local imports count for
layering — they are still dependencies — but not for cycle detection,
because deferring an import is exactly how a legitimate back-reference
breaks a cycle).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.tooling.parse import ParsedModule

__all__ = ["ImportedName", "ModuleImport", "iter_imports"]


@dataclass(frozen=True)
class ImportedName:
    name: str                 #: name as written at the import site
    asname: Optional[str]     #: local binding (``None`` = ``name``)

    @property
    def binding(self) -> str:
        return self.asname or self.name.split(".", 1)[0]


@dataclass(frozen=True)
class ModuleImport:
    """One import statement, normalised."""

    target: str               #: absolute dotted module being imported
    names: Tuple[ImportedName, ...]  #: () for ``import x`` forms
    lineno: int
    top_level: bool           #: executes at module scope
    is_from: bool             #: ``from target import names``


def _resolve_relative(module: ParsedModule, node: ast.ImportFrom) -> str:
    """Absolute target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    base = module.package.split(".")
    # level 1 = current package, each extra level pops one component.
    base = base[: len(base) - (node.level - 1)]
    if node.module:
        base.append(node.module)
    return ".".join(part for part in base if part)


def iter_imports(module: ParsedModule) -> Iterator[ModuleImport]:
    # Top level means "executes at module import time": the module body,
    # module-level conditionals, and class bodies — everything except
    # function bodies, where an import is deferred by construction.
    stack: List[Tuple[ast.AST, bool]] = [(module.tree, True)]
    while stack:
        node, top = stack.pop()
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield ModuleImport(target=alias.name,
                                   names=(),
                                   lineno=node.lineno, top_level=top,
                                   is_from=False)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module, node)
            names = tuple(ImportedName(a.name, a.asname)
                          for a in node.names)
            yield ModuleImport(target=target, names=names,
                               lineno=node.lineno, top_level=top,
                               is_from=True)
        child_top = top and not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        # ``if TYPE_CHECKING:`` bodies never execute: their imports are
        # annotations-only and must not count as runtime (cycle) edges.
        if child_top and isinstance(node, ast.If) \
                and _is_type_checking(node.test):
            child_top = False
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_top))


def _is_type_checking(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
