"""WORX203 — lock discipline.

Some state is protected by a *named lock* (the gateway's slice lock
serializes cold endpoints against the sim driver's kernel steps); some
is protected by a *replace-only* convention (the federation owner map
is swapped wholesale so lock-free readers never see a half-applied
rebalance).  Both disciplines live in ``LintConfig.lock_guarded``:

* ``{"server.store": "lock"}`` — any access to ``self.server.store...``
  in that file must sit inside ``with self.lock:`` (or any ``with``
  over a lock-named expression), or in a function whose ``def`` line
  carries the interprocedural annotation ``# worx: holds lock`` —
  a machine-checked claim that every caller owns the lock (the runtime
  sanitizer asserts it when enabled).
* ``{"_owner": ""}`` — the chain may be read freely and *rebound*
  wholesale, but never mutated in place: no subscript stores, no
  ``del``, no ``.update()``/``.pop()``/... (``__init__`` is exempt —
  the object is not shared while being built).
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Optional, Set, Tuple

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register
from repro.tooling.passes._threads import (attr_chain, function_index,
                                           iter_with_lock,
                                           mutating_receiver)

__all__ = ["LockDisciplinePass"]


def _match(chain, prefix: str) -> bool:
    """Does ``self.<rest>`` fall under the guarded ``prefix``?"""
    if chain is None or not chain or chain[0] != "self":
        return False
    rest = ".".join(chain[1:])
    return rest == prefix or rest.startswith(prefix + ".")


@register
class LockDisciplinePass(LintPass):
    rule_id = "WORX203"
    title = "guarded state accessed outside its lock discipline"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        guarded_map = ctx.config.lock_guarded
        if not guarded_map:
            return
        for module in ctx.modules:
            guarded = guarded_map.get(module.rel)
            if guarded:
                yield from self._check_module(module, guarded)

    def _check_module(self, module: ParsedModule,
                      guarded: Mapping[str, str]) -> Iterator[Finding]:
        locked_chains = {p: l for p, l in guarded.items() if l}
        replace_only = [p for p, l in guarded.items() if not l]
        for info in function_index(module).values():
            name = info.qualname.rsplit(".", 1)[-1]
            if locked_chains:
                yield from self._check_locked(module, info,
                                              locked_chains)
            if replace_only and name != "__init__":
                yield from self._check_replace_only(module, info,
                                                    replace_only)

    # -- named-lock chains ---------------------------------------------------
    def _check_locked(self, module: ParsedModule, info,
                      locked_chains: Mapping[str, str]
                      ) -> Iterator[Finding]:
        held: Optional[str] = module.held_lock(info.node)
        seen: Set[Tuple[int, str]] = set()
        for node, locked in iter_with_lock(info.node):
            if locked or not isinstance(node, ast.Attribute):
                continue
            chain = attr_chain(node)
            for prefix, lock in locked_chains.items():
                if not _match(chain, prefix):
                    continue
                if held == lock:
                    break  # annotated: every caller holds the lock
                key = (node.lineno, prefix)
                if key not in seen:
                    seen.add(key)
                    yield self.finding(
                        module, node,
                        f"'{info.qualname}' accesses guarded state "
                        f"'self.{prefix}' outside 'with self.{lock}:' "
                        f"(annotate '# worx: holds {lock}' only if "
                        f"every caller provably holds it)")
                break

    # -- replace-only chains -------------------------------------------------
    def _check_replace_only(self, module: ParsedModule, info,
                            prefixes) -> Iterator[Finding]:
        for node, _locked in iter_with_lock(info.node):
            offender = self._in_place_mutation(node, prefixes)
            if offender is not None:
                yield self.finding(
                    module, node,
                    f"'{info.qualname}' mutates replace-only state "
                    f"'self.{offender}' in place — copy, edit, and "
                    f"rebind wholesale so lock-free readers never see "
                    f"a half-applied change")

    def _in_place_mutation(self, node: ast.AST,
                           prefixes) -> Optional[str]:
        targets = []
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            node_targets = (node.targets if isinstance(node, ast.Assign)
                            else [node.target])
            for target in node_targets:
                if isinstance(target, ast.Subscript):
                    targets.append(target.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    targets.append(target.value)
        else:
            receiver = mutating_receiver(node)
            if receiver is not None:
                targets.append(receiver)
        for target in targets:
            chain = attr_chain(target)
            for prefix in prefixes:
                if _match(chain, prefix):
                    return prefix
        return None
