"""WORX204 — no blocking calls inside coroutines.

The gateway serves every client from one asyncio event loop; a single
synchronous stall inside an ``async def`` handler freezes *all* of
them (the E17 p99 lives and dies on this).  Flagged, lexically inside
any ``async def`` (nested sync ``def`` bodies are their own scope and
exempt — they run wherever they are called):

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* synchronous ``open(...)`` — stage file work before serving starts
  or push it to a thread;
* a plain ``with <lock>:`` over a lock-named expression, or an
  explicit ``<lock>.acquire()`` — taking the slice lock parks the
  whole event loop behind the sim thread's current slice.  Cold
  endpoints that genuinely need the lock belong in sync helpers the
  handler calls out to (where WORX203 polices them), kept short.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register
from repro.tooling.passes._threads import (attr_chain, is_lockish,
                                           iter_own_nodes)

__all__ = ["AsyncBlockingPass"]


def _sleep_bindings(tree: ast.Module) -> "tuple[Set[str], Set[str]]":
    """(names bound to the time module, names bound to time.sleep)."""
    time_mods: Set[str] = set()
    direct: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".", 1)[0] == "time":
                    time_mods.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        direct.add(alias.asname or alias.name)
    return time_mods, direct


@register
class AsyncBlockingPass(LintPass):
    rule_id = "WORX204"
    title = "blocking call inside an async handler"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.modules:
            time_mods, direct_sleep = _sleep_bindings(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_coroutine(
                        module, node, time_mods, direct_sleep)

    def _check_coroutine(self, module: ParsedModule,
                         func: ast.AsyncFunctionDef,
                         time_mods: Set[str],
                         direct_sleep: Set[str]) -> Iterator[Finding]:
        name = func.name
        for node in iter_own_nodes(func):
            if isinstance(node, ast.With):
                if any(is_lockish(item.context_expr)
                       for item in node.items):
                    yield self.finding(
                        module, node,
                        f"coroutine '{name}' takes a lock with a "
                        f"blocking 'with': this parks the event loop "
                        f"behind the sim thread's slice")
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if isinstance(node.func, ast.Name):
                if node.func.id in direct_sleep:
                    yield self.finding(
                        module, node,
                        f"coroutine '{name}' calls time.sleep: use "
                        f"'await asyncio.sleep(...)'")
                elif node.func.id == "open":
                    yield self.finding(
                        module, node,
                        f"coroutine '{name}' does synchronous file "
                        f"I/O (open): stage it before serving or "
                        f"move it off the loop")
            elif chain is not None and len(chain) == 2 \
                    and chain[0] in time_mods and chain[1] == "sleep":
                yield self.finding(
                    module, node,
                    f"coroutine '{name}' calls time.sleep: use "
                    f"'await asyncio.sleep(...)'")
            elif chain is not None and chain[-1] == "acquire" \
                    and is_lockish(node.func.value):
                yield self.finding(
                    module, node,
                    f"coroutine '{name}' acquires a lock "
                    f"synchronously: this blocks the event loop")
