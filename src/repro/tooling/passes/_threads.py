"""Shared machinery for the worxsan passes (WORX201-205).

Private to ``repro.tooling.passes``: function indexing with dotted
qualnames, execution-context seeding + same-module call-graph
propagation, ``with <lock>`` scope tracking, and the attribute-chain
helpers every concurrency rule needs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.tooling.parse import ParsedModule

__all__ = ["FuncInfo", "attr_chain", "function_index", "seed_contexts",
           "propagate_contexts", "is_lockish", "iter_with_lock",
           "mutating_receiver", "MUT_METHODS"]

#: in-place mutators on the builtin containers (dict/list/set).
MUT_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNC_NODES + (ast.Lambda, ast.ClassDef)


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-name chains
    (anything routed through a call, subscript or literal)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


@dataclass
class FuncInfo:
    """One function (or method) found in a module."""

    node: ast.AST                     #: the FunctionDef/AsyncFunctionDef
    qualname: str                     #: ``Class.method`` / ``func``
    class_name: Optional[str]         #: innermost enclosing class
    is_async: bool
    contexts: Set[str] = field(default_factory=set)


def function_index(module: ParsedModule) -> Dict[str, FuncInfo]:
    """Every function in the module keyed by dotted qualname."""
    index: Dict[str, FuncInfo] = {}

    def visit(node: ast.AST, stack: Tuple[str, ...],
              class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, stack + (child.name,), child.name)
            elif isinstance(child, _FUNC_NODES):
                qual = ".".join(stack + (child.name,))
                index[qual] = FuncInfo(
                    node=child, qualname=qual, class_name=class_name,
                    is_async=isinstance(child, ast.AsyncFunctionDef))
                visit(child, stack + (child.name,), class_name)
            else:
                visit(child, stack, class_name)

    visit(module.tree, (), None)
    return index


def seed_contexts(module: ParsedModule, index: Dict[str, FuncInfo],
                  contexts: Dict[str, str]) -> None:
    """Apply the declarative context map: a bare ``rel.py`` key seeds
    every function in the file, ``rel.py::Qual`` seeds one.  Async
    functions additionally always run in the ``coroutine`` context."""
    file_ctx = contexts.get(module.rel)
    for info in index.values():
        if file_ctx is not None:
            info.contexts.add(file_ctx)
        qual_ctx = contexts.get(f"{module.rel}::{info.qualname}")
        if qual_ctx is not None:
            info.contexts.add(qual_ctx)
        if info.is_async:
            info.contexts.add("coroutine")


def _call_edges(index: Dict[str, FuncInfo]) -> Dict[str, Set[str]]:
    """caller qualname -> callee qualnames, resolved same-module only:
    bare-name calls to module-level functions and ``self.m()`` /
    ``cls.m()`` calls to sibling methods."""
    edges: Dict[str, Set[str]] = {qual: set() for qual in index}
    for qual, info in index.items():
        body = info.node
        for node in iter_own_nodes(body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in index:
                edges[qual].add(func.id)
            elif isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in ("self", "cls") \
                    and info.class_name is not None:
                callee = f"{info.class_name}.{func.attr}"
                if callee in index:
                    edges[qual].add(callee)
    return edges


def propagate_contexts(index: Dict[str, FuncInfo]) -> None:
    """Flow contexts caller -> callee to a fixpoint: a helper invoked
    from both the sim thread and a serving endpoint ends up carrying
    both contexts, which is what WORX201 checks for."""
    edges = _call_edges(index)
    changed = True
    while changed:
        changed = False
        for qual, callees in edges.items():
            source = index[qual].contexts
            if not source:
                continue
            for callee in callees:
                target = index[callee].contexts
                before = len(target)
                target |= source
                if len(target) != before:
                    changed = True


def is_lockish(expr: ast.AST) -> bool:
    """Heuristic: the expression names a lock (``self.lock``,
    ``self._lock``, ``state.sim_lock`` ... — last segment contains
    ``lock``)."""
    chain = attr_chain(expr)
    return chain is not None and "lock" in chain[-1].lower()


def iter_own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every node lexically in ``func``'s body, *excluding* nested
    function/class/lambda subtrees (those are scopes of their own)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def iter_with_lock(func: ast.AST, *, initial: bool = False
                   ) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield ``(node, locked)`` for every node lexically in ``func``
    (nested scopes excluded), where ``locked`` is True inside a
    ``with <lock>:`` block or when ``initial`` says the caller already
    holds the lock (a ``# worx: holds`` annotation)."""

    def visit(node: ast.AST, locked: bool) -> Iterator[
            Tuple[ast.AST, bool]]:
        for child in ast.iter_child_nodes(node):
            child_locked = locked
            if isinstance(child, (ast.With, ast.AsyncWith)) and any(
                    is_lockish(item.context_expr)
                    for item in child.items):
                child_locked = True
            yield child, child_locked
            if not isinstance(child, _SCOPE_NODES):
                yield from visit(child, child_locked)

    yield from visit(func, initial)


def mutating_receiver(node: ast.AST) -> Optional[ast.AST]:
    """For a call of an in-place mutator (``x.y.append(v)``), the
    receiver expression (``x.y``); ``None`` otherwise."""
    if isinstance(node, ast.Call) \
            and isinstance(node.func, ast.Attribute) \
            and node.func.attr in MUT_METHODS:
        return node.func.value
    return None
