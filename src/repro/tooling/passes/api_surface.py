"""WORX105 — the API surface.

Three checks keep a package's exported surface honest:

* every name listed in a module's ``__all__`` must actually be defined
  or imported in that module (a phantom export breaks ``import *`` and
  lies to readers);
* a *package-level* cross-package import (``from repro.slurm import
  X`` written outside ``repro.slurm``) must name an exported symbol —
  ``X`` must appear in that package's ``__all__``.  Deep submodule
  imports are the layering pass's concern, not this one's;
* importing an underscore-private name from another package is never
  part of the surface, ``__all__`` or not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.passes._imports import iter_imports
from repro.tooling.registry import LintContext, LintPass, register

__all__ = ["ApiSurfacePass"]


def _dunder_all(tree: ast.Module) -> Optional[List[Tuple[str, int]]]:
    """(name, lineno) pairs from ``__all__`` list/tuple literals,
    including ``__all__ += [...]``; None when no ``__all__`` exists."""
    entries: Optional[List[Tuple[str, int]]] = None
    for node in tree.body:
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets):
            value = node.value
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == "__all__":
            value = node.value
        if value is None:
            continue
        if entries is None:
            entries = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, str):
                    entries.append((elt.value, elt.lineno))
    return entries


def _defined_names(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Module-level bindings, and whether a star import blinds us."""
    names: Set[str] = set()
    has_star = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    has_star = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # one level of conditional definition (TYPE_CHECKING,
            # optional-dependency guards) is enough for this codebase
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef, ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Name) \
                        and isinstance(sub.ctx, ast.Store):
                    names.add(sub.id)
    return names, has_star


@register
class ApiSurfacePass(LintPass):
    rule_id = "WORX105"
    title = "__all__ must resolve; cross-package imports use exports"
    severity = "warning"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        exports: Dict[str, Set[str]] = {}
        for module in ctx.modules:
            entries = _dunder_all(module.tree)
            if entries is not None and module.rel.endswith("__init__.py"):
                exports[module.module] = {name for name, _ in entries}
        yield from self._check_all_resolution(ctx)
        yield from self._check_import_surface(ctx, exports)

    def _check_all_resolution(self, ctx: LintContext
                              ) -> Iterator[Finding]:
        for module in ctx.modules:
            entries = _dunder_all(module.tree)
            if entries is None:
                continue
            defined, has_star = _defined_names(module.tree)
            if has_star:
                continue  # cannot prove anything past ``import *``
            for name, lineno in entries:
                if name in defined or name == "__version__":
                    continue
                yield Finding(
                    path=module.rel, line=lineno,
                    rule_id=self.rule_id,
                    message=(f"__all__ lists {name!r} but the module "
                             f"never defines or imports it"),
                    severity=self.severity)

    def _check_import_surface(self, ctx: LintContext,
                              exports: Dict[str, Set[str]]
                              ) -> Iterator[Finding]:
        for module in ctx.modules:
            component = ctx.component(module.module)
            if component is None:
                continue
            for imp in iter_imports(module):
                if not imp.is_from or not imp.names:
                    continue
                target_component = ctx.component(imp.target)
                if target_component is None \
                        or target_component == component:
                    continue
                for imported in imp.names:
                    if imported.name == "*":
                        continue
                    if imported.name.startswith("_") and not (
                            imported.name.startswith("__")
                            and imported.name.endswith("__")):
                        yield self.finding(
                            module, imp,
                            f"imports private name {imported.name!r} "
                            f"from {imp.target}: private helpers are "
                            f"not part of another package's surface")
                        continue
                    surface = exports.get(imp.target)
                    if surface is None:
                        continue  # deep module import, or no __all__
                    if imported.name not in surface:
                        yield self.finding(
                            module, imp,
                            f"{imported.name!r} is not exported by "
                            f"{imp.target} (missing from its __all__); "
                            f"import it from its defining module or "
                            f"export it")
