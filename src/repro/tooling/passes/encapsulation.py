"""WORX103 — encapsulation.

The scope-aware replacement for the old regex private-attribute lint:
no reaching into another object's ``_private`` state from outside the
module that owns it.  Because this pass walks the AST, strings,
comments, and f-strings can never false-positive (the regex predecessor
corrupted lines where ``#`` appeared inside a string literal), and
scoping is understood structurally:

* ``self._x`` / ``cls._x`` — always fine, wherever they appear
  (comprehension bodies included: the class stack, not the expression
  nesting, decides ownership).
* **Same-class peer access** — ``other._mean`` inside ``Welford.merge``
  is fine when ``_mean`` is an attribute the enclosing module's own
  classes define (``self._mean = ...``, class-level ``_mean = ...``,
  ``__slots__`` entries, or ``def _mean``).  A module may use its own
  internals; outsiders may not.
* Anything else — ``name._attr`` where the attribute is not part of the
  current module's private surface — is a violation: add a public API
  on the owning class instead.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register

__all__ = ["EncapsulationPass"]

#: single-underscore lowercase privates, matching the historical lint;
#: dunders (``__init__``) and sunders (``_``) are out of scope.
_PRIVATE = re.compile(r"^_[a-z][a-z0-9_]*$")


def _private_surface(tree: ast.Module) -> Set[str]:
    """Every private attribute/method name defined by classes (or
    module-level ``def _helper``) in this module."""
    surface: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _PRIVATE.match(node.name):
                surface.add(node.name)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                for target in _assigned_names(item):
                    if _PRIVATE.match(target):
                        surface.add(target)
            surface.update(_slots_entries(node))
        elif isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Store) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls") \
                and _PRIVATE.match(node.attr):
            surface.add(node.attr)
    return surface


def _assigned_names(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(node, ast.AnnAssign) \
            and isinstance(node.target, ast.Name):
        yield node.target.id


def _slots_entries(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for item in cls.body:
        if isinstance(item, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in item.targets):
            for elt in ast.walk(item.value):
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, str):
                    names.add(elt.value)
    return names


@register
class EncapsulationPass(LintPass):
    rule_id = "WORX103"
    title = "no cross-module private-attribute access"
    severity = "warning"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.modules:
            surface = _private_surface(module.tree)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.value, ast.Name):
                    continue  # only simple-name receivers, per policy
                receiver = node.value.id
                attr = node.attr
                if receiver in ("self", "cls"):
                    continue
                if not _PRIVATE.match(attr):
                    continue
                if attr in surface:
                    continue  # this module's own internals
                yield self.finding(
                    module, node,
                    f"{receiver}.{attr} reaches into private state "
                    f"owned elsewhere; add a public method/property on "
                    f"the receiver's class")
