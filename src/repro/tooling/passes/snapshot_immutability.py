"""WORX202 — snapshot immutability.

The zero-copy serving story (E14/E17) rests on one invariant: once a
view is *published* — stored as ``<x>.view``, returned by
``store.snapshot()``, or received as a frozen record — nobody mutates
anything reachable from it.  The COW store forks on write precisely so
readers never need a lock; a single in-place edit of a published dict
reintroduces the race the whole design exists to remove.

This is a per-function forward dataflow pass.  Taint roots:

* reads of a published attribute (``state.view`` — names listed in
  ``LintConfig.published_attrs``);
* results of ``<x>.snapshot()`` calls;
* parameters annotated with a frozen type (``update: Update``).

Taint follows attribute access, subscripts and view-returning methods
(``.items()``/``.values()``/``.keys()``/``.get()``); any other call
breaks it (``dict(view.summary)`` is the sanctioned copy-out idiom),
and rebinding a name to an untainted value clears it.  Flagged: any
attribute store, subscript store, deletion or in-place mutator call
whose target passes *through* a tainted value.  Rebinding the
published slot itself (``self.view = fresh``) stays legal — that is
the atomic publish.

Class bodies of the frozen types themselves (``LintConfig.
frozen_types``) are exempt: ``PublishedView.__init__`` is allowed to
build the object it will later freeze.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register
from repro.tooling.passes._threads import MUT_METHODS, attr_chain

__all__ = ["SnapshotImmutabilityPass"]

#: methods that return live views of their receiver (taint flows through).
_VIEW_METHODS = frozenset({"items", "values", "keys", "get"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip("'\" ")
    if isinstance(node, ast.Subscript):  # Optional[Update] etc.
        return _annotation_name(node.slice)
    return None


class _FunctionTaint:
    """Forward taint walk over one function body, source order."""

    def __init__(self, lint_pass: "SnapshotImmutabilityPass",
                 module: ParsedModule, func: ast.AST,
                 published: frozenset, frozen: frozenset):
        self.lint_pass = lint_pass
        self.module = module
        self.published = published
        self.frozen = frozen
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            if _annotation_name(arg.annotation) in frozen:
                self.tainted.add(arg.arg)

    # -- taint queries -------------------------------------------------------
    def is_tainted(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if node.attr in self.published:
                return True
            return self.is_tainted(node.value)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            if node.func.attr == "snapshot":
                return True
            if node.func.attr in _VIEW_METHODS:
                return self.is_tainted(node.func.value)
        return False

    def _describe(self, node: ast.AST) -> str:
        chain = attr_chain(node)
        return "'%s'" % ".".join(chain) if chain else "a published value"

    def _flag(self, node: ast.AST, what: str, via: ast.AST) -> None:
        self.findings.append(self.lint_pass.finding(
            self.module, node,
            f"{what} reachable from published/frozen value "
            f"{self._describe(via)}: snapshots are immutable after "
            f"publish — copy out (dict(...)) before editing"))

    # -- expression scan: mutator calls anywhere in an expression ------------
    def _scan_expr(self, expr: Optional[ast.AST]) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUT_METHODS \
                    and self.is_tainted(node.func.value):
                self._flag(node, f"in-place .{node.func.attr}() call",
                           node.func.value)

    # -- binding updates -----------------------------------------------------
    def _bind(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tainted)

    # -- statement walk ------------------------------------------------------
    def visit_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
            return  # separate scope, analyzed on its own
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            for target in stmt.targets:
                self._check_store(target)
            tainted = self.is_tainted(stmt.value)
            for target in stmt.targets:
                self._bind(target, tainted)
        elif isinstance(stmt, ast.AnnAssign):
            self._scan_expr(stmt.value)
            if stmt.value is not None:
                self._check_store(stmt.target)
                self._bind(stmt.target, self.is_tainted(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value)
            self._check_store(stmt.target, augmented=True)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store(target, deleting=True)
        elif isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value)
        elif isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                self._scan_expr(child)
        elif isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self._scan_expr(stmt.test)
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter)
            self._bind(stmt.target, self.is_tainted(stmt.iter))
            self.visit_body(stmt.body)
            self.visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self.is_tainted(item.context_expr))
            self.visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.visit_body(stmt.body)
            for handler in stmt.handlers:
                self.visit_body(handler.body)
            self.visit_body(stmt.orelse)
            self.visit_body(stmt.finalbody)

    def _check_store(self, target: ast.AST, *, augmented: bool = False,
                     deleting: bool = False) -> None:
        """A store/delete through a tainted base is a mutation of the
        published object; rebinding a *name* (or a fresh attribute on an
        untainted base) is not."""
        if isinstance(target, ast.Attribute):
            if self.is_tainted(target.value):
                kind = ("augmented attribute store" if augmented else
                        "attribute deletion" if deleting else
                        "attribute store")
                self._flag(target, kind, target.value)
        elif isinstance(target, ast.Subscript):
            if self.is_tainted(target.value):
                kind = ("augmented subscript store" if augmented else
                        "entry deletion" if deleting else
                        "subscript store")
                self._flag(target, kind, target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, augmented=augmented,
                                  deleting=deleting)


@register
class SnapshotImmutabilityPass(LintPass):
    rule_id = "WORX202"
    title = "published snapshots/views are immutable"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        published = ctx.config.published_attrs
        frozen = ctx.config.frozen_types
        for module in ctx.modules:
            yield from self._check_module(module, published, frozen)

    def _check_module(self, module: ParsedModule, published: frozenset,
                      frozen: frozenset) -> Iterator[Finding]:
        for func, owner_class in _functions_with_class(module.tree):
            if owner_class in frozen:
                continue  # the frozen type may build itself
            taint = _FunctionTaint(self, module, func, published, frozen)
            taint.visit_body(func.body)
            yield from iter(taint.findings)


def _functions_with_class(tree: ast.Module):
    """Every (function node, innermost class name) pair in the module."""

    def visit(node: ast.AST, class_name: Optional[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, _FUNC_NODES):
                yield child, class_name
                yield from visit(child, class_name)
            else:
                yield from visit(child, class_name)

    yield from visit(tree, None)
