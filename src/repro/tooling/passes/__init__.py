"""The worxlint pass suite.  Importing this package registers every
pass with :mod:`repro.tooling.registry`:

    WORX101  layering        imports respect the layer map; no cycles
    WORX102  determinism     no wall clocks / global RNG in sim code
    WORX103  encapsulation   no reaching into foreign ``_private`` state
    WORX104  subscriber-safety  store callbacks must not re-enter mutators
    WORX105  api-surface     ``__all__`` resolves; imports use exports
    WORX106  handlers        no swallowed exceptions outside handler shells
    WORX107  fanout-discipline  federation fan-out reads go through the
                             breaker-guarded channel call idiom

and the worxsan concurrency family:

    WORX201  thread-discipline   cross-context access to mutable state
    WORX202  snapshot-immutability  no mutation through published views
    WORX203  lock-discipline     guarded state accessed outside its lock
    WORX204  async-blocking      no blocking calls inside coroutines
    WORX205  shard-ownership     shard organs never escape their owner
"""

from repro.tooling.passes import (api_surface, async_blocking, determinism,
                                  encapsulation, fanout_discipline,
                                  handlers, layering, lock_discipline,
                                  shard_ownership, snapshot_immutability,
                                  subscribers, thread_context)

__all__ = ["api_surface", "async_blocking", "determinism",
           "encapsulation", "fanout_discipline", "handlers", "layering",
           "lock_discipline", "shard_ownership",
           "snapshot_immutability", "subscribers", "thread_context"]
