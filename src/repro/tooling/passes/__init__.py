"""The worxlint pass suite.  Importing this package registers every
pass with :mod:`repro.tooling.registry`:

    WORX101  layering        imports respect the layer map; no cycles
    WORX102  determinism     no wall clocks / global RNG in sim code
    WORX103  encapsulation   no reaching into foreign ``_private`` state
    WORX104  subscriber-safety  store callbacks must not re-enter mutators
    WORX105  api-surface     ``__all__`` resolves; imports use exports
    WORX106  handlers        no swallowed exceptions outside handler shells
"""

from repro.tooling.passes import (api_surface, determinism, encapsulation,
                                  handlers, layering, subscribers)

__all__ = ["api_surface", "determinism", "encapsulation", "handlers",
           "layering", "subscribers"]
