"""WORX107 — federation fan-out discipline.

The self-healing argument of the sharded control plane rests on one
idiom: every cross-shard read in the federation's fan-out modules goes
through the breaker-guarded channel —

    shard.call(lambda: shard.server.store.get(host), default=None,
               label="store-get")

— so a dead shard degrades the read to its declared default instead of
raising into a federated view, a gateway handler, or the ingest loop.
A *bare* ``.server`` attribute access in those modules is exactly the
pre-fail-over single point of failure this PR removed; one is enough to
turn a shard kill back into a fleet-wide 500.

Within ``LintConfig.fanout_guarded`` (rel paths, exact match), flagged:
any ``X.server`` / ``X...server...`` attribute chain that is not
lexically inside the argument list of a ``*.call(...)`` invocation.
The lambda body above *is* inside the call's arguments, so the idiom
passes; hoisting the read out of the lambda does not.  Deliberate raw
access (e.g. the rehome identity anchor, which must compare object
identity and not a guarded copy) carries a same-line
``# worx: ok WORX107`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register

__all__ = ["FanoutDisciplinePass"]


@register
class FanoutDisciplinePass(LintPass):
    rule_id = "WORX107"
    title = "bare .server access on a federation fan-out path"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        guarded = ctx.config.fanout_guarded
        if not guarded:
            return
        for module in ctx.modules:
            if module.rel in guarded:
                yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        sanctioned = self._sanctioned(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) \
                    and node.attr == "server" \
                    and id(node) not in sanctioned:
                yield self.finding(
                    module, node,
                    "bare '.server' access on a fan-out path: route the "
                    "read through the breaker-guarded call idiom "
                    "(shard.call(lambda: ..., default=..., label=...)) "
                    "so a dead shard degrades instead of raising")

    @staticmethod
    def _sanctioned(tree: ast.AST) -> Set[int]:
        """Ids of every node lexically inside the argument list of a
        ``*.call(...)`` invocation (lambda bodies included)."""
        out: Set[int] = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "call"):
                continue
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                for inner in ast.walk(arg):
                    out.add(id(inner))
        return out
