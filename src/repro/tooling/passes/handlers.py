"""WORX106 — no swallowed exceptions.

The resilience subsystem's whole contract is that failures are
*recorded* (orchestrator error lists, worker results, lint findings) —
never silently dropped.  A handler that catches everything and does
nothing turns a playbook bug into an unexplained stall.  Flagged:

* a **bare** ``except:`` anywhere — it catches ``SystemExit`` /
  ``KeyboardInterrupt`` and the kernel's control-flow exceptions
  (``Interrupt``, ``ProcessKilled``), which must always propagate;
* ``except Exception`` / ``except BaseException`` (alone or inside a
  tuple) whose body does nothing — only ``pass``, ``continue``, ``...``
  or a string — i.e. the error is neither bound, logged, recorded,
  re-raised nor transformed.

Catching a *narrow* exception and passing (``except KeyError: pass``)
stays legal: that is a considered statement about one failure mode.
Files listed in ``LintConfig.handler_shells`` (files, or directory
prefixes ending in ``/``) are exempt — declared outermost shells whose
job is to defuse anything (e.g. a REPL loop).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register

__all__ = ["SwallowedExceptionsPass"]

_CATCH_ALL = frozenset({"Exception", "BaseException"})


def _in_shell(module: ParsedModule, shell: frozenset) -> bool:
    for entry in shell:
        if module.rel == entry:
            return True
        if entry.endswith("/") and module.rel.startswith(entry):
            return True
    return False


def _catch_all_name(node: ast.AST) -> bool:
    """Does this exception-type expression name a catch-all class?"""
    if isinstance(node, ast.Name):
        return node.id in _CATCH_ALL
    if isinstance(node, ast.Attribute):  # builtins.Exception and friends
        return node.attr in _CATCH_ALL
    if isinstance(node, ast.Tuple):
        return any(_catch_all_name(item) for item in node.elts)
    return False


def _body_does_nothing(body) -> bool:
    """True when the handler body neither acts on nor records the error:
    only ``pass``/``continue`` and bare constants (docstrings, ``...``)."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


@register
class SwallowedExceptionsPass(LintPass):
    rule_id = "WORX106"
    title = "exceptions must be handled or propagated, never swallowed"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        shell = ctx.config.handler_shells
        for module in ctx.modules:
            if _in_shell(module, shell):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare except: catches SystemExit and the kernel's "
                    "control-flow exceptions; name what you expect")
            elif _catch_all_name(node.type) \
                    and _body_does_nothing(node.body):
                yield self.finding(
                    module, node,
                    "swallowed exception: a catch-all handler that does "
                    "nothing hides real failures; record, re-raise, or "
                    "narrow the exception type")
