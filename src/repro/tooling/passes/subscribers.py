"""WORX104 — subscriber safety.

A :class:`~repro.core.statestore.StateStore` subscription callback runs
*inside* the store's publish loop.  Calling a mutating store/server API
from there re-enters the write path mid-notification: ``apply`` from a
callback recurses ``_publish`` (unbounded when two subscribers feed each
other), ``track``/``forget`` invalidate the rollup the in-flight update
is being merged against, and ``subscribe`` makes delivery order depend
on registration timing.  Detaching (``unsubscribe``/``cancel``) is
explicitly safe — the store iterates a copy — and is not flagged.

The pass finds registration sites (``<recv>.subscribe(cb, ...)`` and
``<session>.watch(cb, ...)``), resolves each callback to its function
definition — a local ``def``, a ``self.<method>``, or a method reached
through a typed attribute/variable (``self.history = HistoryStore(...)``
then ``subscribe(self.history.ingest)``), following imports to other
parsed modules when needed — and flags any call to a mutator name
lexically inside the callback body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.tooling.findings import Finding
from repro.tooling.parse import ParsedModule
from repro.tooling.registry import LintContext, LintPass, register

__all__ = ["SubscriberSafetyPass"]

#: registration method names whose first argument is a pushed-delta
#: callback.
_REGISTRARS = frozenset({"subscribe", "watch"})

#: store/server APIs that mutate state or the subscription list —
#: calling any of these from inside a callback is the re-entrancy
#: hazard this rule exists for.
_MUTATORS = frozenset({
    "apply", "ingest", "receive", "track", "forget",
    "track_node", "forget_node", "subscribe"})


@dataclass
class _ClassInfo:
    node: ast.ClassDef
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: ``self.<attr> = SomeClass(...)`` -> "SomeClass"
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleIndex:
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)
    #: every function/method def by bare name (module, nested, methods)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: ``name = SomeClass(...)`` anywhere -> "SomeClass"
    var_types: Dict[str, str] = field(default_factory=dict)
    #: imported local name -> source module
    imports: Dict[str, str] = field(default_factory=dict)


def _callee_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _index_module(module: ParsedModule) -> _ModuleIndex:
    index = _ModuleIndex()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                index.imports[alias.asname or alias.name] = node.module
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions.setdefault(node.name, node)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.value, ast.Call):
            cls_name = _callee_name(node.value.func)
            target = node.targets[0]
            if cls_name is None:
                continue
            if isinstance(target, ast.Name):
                index.var_types.setdefault(target.id, cls_name)
        elif isinstance(node, ast.ClassDef):
            info = _ClassInfo(node)
            for item in ast.walk(node):
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    info.methods.setdefault(item.name, item)
                elif isinstance(item, ast.Assign) \
                        and len(item.targets) == 1 \
                        and isinstance(item.targets[0], ast.Attribute) \
                        and isinstance(item.targets[0].value, ast.Name) \
                        and item.targets[0].value.id == "self" \
                        and isinstance(item.value, ast.Call):
                    cls_name = _callee_name(item.value.func)
                    if cls_name is not None:
                        info.attr_types.setdefault(
                            item.targets[0].attr, cls_name)
            index.classes[node.name] = info
    return index


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _Resolver:
    """Resolve a callback expression to its FunctionDef, cross-module."""

    def __init__(self, ctx: LintContext):
        self.ctx = ctx
        self._indexes: Dict[str, _ModuleIndex] = {}

    def index(self, module: ParsedModule) -> _ModuleIndex:
        if module.module not in self._indexes:
            self._indexes[module.module] = _index_module(module)
        return self._indexes[module.module]

    def _class_info(self, module: ParsedModule,
                    cls_name: str) -> Optional[Tuple[ParsedModule,
                                                     _ClassInfo]]:
        index = self.index(module)
        if cls_name in index.classes:
            return module, index.classes[cls_name]
        source = index.imports.get(cls_name)
        if source is None:
            return None
        target = self.ctx.by_module.get(source) \
            or self.ctx.resolve_import(f"{source}.{cls_name}")
        if target is None:
            return None
        foreign = self.index(target).classes.get(cls_name)
        if foreign is None:
            return None
        return target, foreign

    def resolve(self, module: ParsedModule, callback: ast.AST,
                enclosing_class: Optional[ast.ClassDef]
                ) -> Optional[Tuple[ParsedModule, ast.FunctionDef]]:
        index = self.index(module)
        if isinstance(callback, ast.Name):
            fn = index.functions.get(callback.id)
            return (module, fn) if fn is not None else None
        chain = _attr_chain(callback)
        if chain is None or len(chain) < 2:
            return None
        base, rest = chain[0], chain[1:]
        # Establish the class the chain starts from.
        if base in ("self", "cls"):
            if enclosing_class is None:
                return None
            owner = (module, index.classes[enclosing_class.name])
        else:
            cls_name = index.var_types.get(base)
            if cls_name is None:
                return None
            owner = self._class_info(module, cls_name)
        # Walk intermediate attributes through declared attribute types.
        for attr in rest[:-1]:
            if owner is None:
                return None
            owner_module, info = owner
            cls_name = info.attr_types.get(attr)
            if cls_name is None:
                return None
            owner = self._class_info(owner_module, cls_name)
        if owner is None:
            return None
        owner_module, info = owner
        method = info.methods.get(rest[-1])
        return (owner_module, method) if method is not None else None


def _registrations(module: ParsedModule
                   ) -> Iterator[Tuple[ast.Call, ast.AST,
                                       Optional[ast.ClassDef]]]:
    """(call, callback expr, enclosing class) per registration site."""
    stack: List[Tuple[ast.AST, Optional[ast.ClassDef]]] = [
        (module.tree, None)]
    while stack:
        node, cls = stack.pop()
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _REGISTRARS:
            callback: Optional[ast.AST] = None
            if node.args:
                callback = node.args[0]
            else:
                for kw in node.keywords:
                    if kw.arg == "callback":
                        callback = kw.value
            if callback is not None:
                yield node, callback, cls
        child_cls = node if isinstance(node, ast.ClassDef) else cls
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_cls))


@register
class SubscriberSafetyPass(LintPass):
    rule_id = "WORX104"
    title = "subscription callbacks must not re-enter store mutators"
    severity = "error"

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        resolver = _Resolver(ctx)
        seen: set = set()
        for module in ctx.modules:
            for call, callback, cls in _registrations(module):
                resolved = resolver.resolve(module, callback, cls)
                if resolved is None:
                    continue
                owner_module, fn = resolved
                key = (owner_module.module, fn.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield from self._check_callback(owner_module, fn)

    def _check_callback(self, module: ParsedModule,
                        fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _MUTATORS:
                continue
            receiver = ast.unparse(node.func.value) \
                if hasattr(ast, "unparse") else "<recv>"
            yield self.finding(
                module, node,
                f"subscription callback {fn.name!r} calls "
                f"{receiver}.{node.func.attr}(...) — a mutating "
                f"store/server API — from inside the publish loop; "
                f"defer the mutation (queue it, or schedule a kernel "
                f"event) instead of re-entering the store")
