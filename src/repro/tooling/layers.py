"""The declared layer map of the ``repro`` codebase (WORX101).

Lower numbers are lower layers.  A module may import from its own
package and from any package at the *same or lower* layer; importing
upward is a layering violation.  Cycles are forbidden at any layer.

    0  util, sim, tooling          pure substrate: no repro imports
    1  hardware, procfs            the simulated machine
    2  network, icebox, imaging,   device subsystems built on it
       firmware, monitoring
    3  events, remote, slurm,      control-plane services
       resilience
    4  core                        the 3-tier server + facade internals
    5  federation                  sharded control plane over core
    6  gateway, faults             async serving front-end over either
                                   topology; control-plane fault
                                   injection over federation + gateway
    7  cli, repro/__init__         operator shell / public facade

Keep this table in sync with the DESIGN.md "worxlint" section when a
package is added or moved.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["LAYER_MAP"]

LAYER_MAP: Mapping[str, int] = {
    "util": 0,
    "sim": 0,
    "tooling": 0,
    "hardware": 1,
    "procfs": 1,
    "network": 2,
    "icebox": 2,
    "imaging": 2,
    "firmware": 2,
    "monitoring": 2,
    "events": 3,
    "remote": 3,
    "slurm": 3,
    "resilience": 3,
    "core": 4,
    "federation": 5,
    "gateway": 6,
    "faults": 6,
    "cli": 7,
    "": 7,  # the repro/__init__.py facade
}
