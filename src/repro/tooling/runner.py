"""The lint driver: one shared parse, every pass, central suppression.

``run_lint`` parses the tree exactly once (asserted by the tier-1
counting test), hands the same :class:`LintContext` to every registered
pass, then partitions the raw findings three ways:

* **suppressed** — a same-line ``# worx: ok [RULES]`` pragma waives it;
* **baselined** — its ``rule:path:line`` key is grandfathered in the
  committed baseline file;
* **active** — everything else; any active finding fails the gate.

Two run-mechanics knobs ride on the config: the parsed-module cache
(unchanged files skip re-parsing across runs; ``no_cache`` bypasses
it) and ``only_paths`` (``repro-cli lint --changed``) which still
parses the whole tree — the passes are whole-program — but reports
findings only for the named files.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.tooling.findings import Finding, write_baseline
from repro.tooling.layers import LAYER_MAP
from repro.tooling.concurrency import (CONTEXT_MAP, FANOUT_GUARDED,
                                       FROZEN_TYPES, LOCK_GUARDED,
                                       PUBLISHED_ATTRS, SHARD_ROOTS,
                                       SIM_OWNED)
from repro.tooling.parse import parse_tree
from repro.tooling.registry import LintConfig, LintContext, get_passes

__all__ = ["LintResult", "default_config", "run_lint",
           "refresh_baseline", "JSON_SCHEMA_VERSION"]

#: bumped only when the shape of ``LintResult.to_json`` changes.
JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Outcome of one lint run over one tree."""

    findings: List[Finding]              #: active — these fail the gate
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    modules: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"worxlint: {len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined) across "
            f"{self.modules} modules")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "ok": self.ok,
            "modules": self.modules,
            "rules": list(self.rules),
            "findings": [f.to_json() for f in sorted(self.findings)],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }


def default_config(root: Optional[Path] = None, *,
                   baseline: Optional[Path] = None,
                   rules: Optional[Set[str]] = None,
                   no_cache: bool = False,
                   only_paths: Optional[Set[str]] = None) -> LintConfig:
    """The repo's own policy: the ``repro`` layer map, ``cli.py`` and
    the gateway's serving shell as the only wall-clock modules, the
    concurrency contract from :mod:`repro.tooling.concurrency`, and
    the committed baseline beside ``src/``."""
    if root is None:
        root = Path(__file__).resolve().parents[2]
    if baseline is None:
        candidate = root.parent / "worxlint.baseline"
        baseline = candidate if candidate.is_file() else None
    cache_path = root.parent / ".worxlint.cache"
    return LintConfig(root=root, package="repro", layers=dict(LAYER_MAP),
                      determinism_shell=frozenset(
                          {"repro/cli.py", "repro/gateway/shell.py"}),
                      handler_shells=frozenset(),
                      baseline=baseline,
                      rules=frozenset(rules) if rules else None,
                      contexts=dict(CONTEXT_MAP),
                      sim_owned=dict(SIM_OWNED),
                      lock_guarded=dict(LOCK_GUARDED),
                      frozen_types=FROZEN_TYPES,
                      published_attrs=PUBLISHED_ATTRS,
                      shard_roots=SHARD_ROOTS,
                      fanout_guarded=FANOUT_GUARDED,
                      no_cache=no_cache,
                      cache_path=cache_path,
                      only_paths=(frozenset(only_paths)
                                  if only_paths is not None else None))


def _load_baseline_keys(config: LintConfig) -> Set[str]:
    from repro.tooling.findings import load_baseline
    if config.baseline is None:
        return set()
    return load_baseline(config.baseline)


def run_lint(config: LintConfig) -> LintResult:
    """Parse once, run the selected passes, partition the findings."""
    modules = parse_tree(config.root, use_cache=not config.no_cache,
                         cache_path=config.cache_path)
    ctx = LintContext(config, modules)
    by_rel = {m.rel: m for m in modules}
    baseline_keys = _load_baseline_keys(config)
    passes = get_passes(config.rules)
    only = config.only_paths

    active: List[Finding] = []
    suppressed: List[Finding] = []
    baselined: List[Finding] = []
    for lint_pass in passes:
        for finding in lint_pass.run(ctx):
            if only is not None and finding.path not in only:
                continue
            module = by_rel.get(finding.path)
            if module is not None and module.suppresses(
                    finding.line, finding.rule_id):
                suppressed.append(finding)
            elif finding.key in baseline_keys:
                baselined.append(finding)
            else:
                active.append(finding)
    return LintResult(findings=sorted(active),
                      suppressed=sorted(suppressed),
                      baselined=sorted(baselined),
                      modules=len(modules),
                      rules=[p.rule_id for p in passes])


def refresh_baseline(config: LintConfig, path: Path) -> LintResult:
    """Re-grandfather: write every *active* finding into ``path``.

    Prefer fixing or pragma-annotating findings; the baseline is for
    landing a new rule before the tree is clean, not for hiding debt.
    The refresh runs the *full* tree (``only_paths`` cleared): a
    baseline built from a partial view would silently drop every key
    outside it.
    """
    result = run_lint(replace(config, baseline=None, only_paths=None))
    write_baseline(path, result.findings)
    return result
