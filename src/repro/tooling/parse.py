"""The shared parse: every module under the linted root is read and
``ast.parse``-d exactly once, no matter how many passes run.

Passes never touch the filesystem or call :func:`ast.parse` themselves —
they receive :class:`ParsedModule` objects carrying the tree, the source,
and the pre-extracted pragma map.  :data:`PARSE_COUNT` counts calls to
:func:`parse_file` so the test suite can assert the single-parse property
instead of trusting it.

Repeated runs additionally skip *unchanged* files through a cache keyed
by ``(path, mtime_ns, size)`` — in-process always, and across processes
via an optional pickle file (``.worxlint.cache`` beside the baseline) so
back-to-back ``make check`` invocations only re-parse what was edited.
Cache hits do not bump :data:`PARSE_COUNT`, which is exactly how the
tests observe the cache working (and ``--no-cache`` bypassing it).
"""

from __future__ import annotations

import ast
import io
import pickle
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = ["ParsedModule", "PARSE_COUNT", "parse_count", "parse_file",
           "parse_tree", "clear_cache", "cache_size"]

#: Total ast.parse invocations since import — the re-parse canary.
PARSE_COUNT = 0

#: ``# worx: ok`` / ``# worx: ok WORX103`` / ``# worx: ok WORX101, WORX105``
_PRAGMA = re.compile(r"#\s*worx:\s*ok\b\s*([A-Za-z0-9_,\s]*)")

#: ``# worx: holds <lock>`` — the interprocedural lock annotation: the
#: function defined on that line runs with ``self.<lock>`` already held
#: by its caller (WORX201/WORX203 treat its whole body as locked).
_HOLDS = re.compile(r"#\s*worx:\s*holds\s+([A-Za-z_][A-Za-z0-9_.]*)")


def parse_count() -> int:
    """Current value of the parse counter (read through a function so
    tests are immune to ``from ... import`` snapshotting)."""
    return PARSE_COUNT


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every pass."""

    path: Path            #: absolute path on disk
    rel: str              #: posix path relative to the linted root
    module: str           #: dotted module name (``repro.sim.kernel``)
    source: str
    tree: ast.Module
    #: physical line -> suppressed rule ids; ``None`` means *all* rules
    #: (a bare ``# worx: ok``).
    pragmas: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict)
    #: physical line -> lock name from a ``# worx: holds <lock>``
    #: annotation (keyed by the ``def`` line it decorates).
    holds: Dict[int, str] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted package containing this module (itself if a package)."""
        if self.module.endswith("__init__") or "." not in self.module:
            return self.module.rsplit(".__init__", 1)[0]
        return self.module.rsplit(".", 1)[0]

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True when a same-line pragma waives ``rule_id``."""
        if line not in self.pragmas:
            return False
        rules = self.pragmas[line]
        return rules is None or rule_id in rules

    def held_lock(self, node: ast.AST) -> Optional[str]:
        """The lock a ``# worx: holds <lock>`` annotation on this
        function's ``def`` line declares the caller owns, or ``None``."""
        return self.holds.get(getattr(node, "lineno", -1))


def _extract_pragmas(source: str) -> Tuple[
        Dict[int, Optional[FrozenSet[str]]], Dict[int, str]]:
    """Suppression + holds annotations from *comment tokens only* — a
    pragma spelled inside a string literal is data, not an annotation."""
    pragmas: Dict[int, Optional[FrozenSet[str]]] = {}
    holds: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if match is not None:
                names = frozenset(
                    part.strip().upper()
                    for part in re.split(r"[,\s]+", match.group(1))
                    if part.strip())
                pragmas[tok.start[0]] = names or None
            match = _HOLDS.search(tok.string)
            if match is not None:
                holds[tok.start[0]] = match.group(1)
    except tokenize.TokenError:
        pass  # ast.parse will report the real syntax problem
    return pragmas, holds


def _module_name(rel: str) -> str:
    parts = rel[:-3].split("/")  # strip ".py"
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# -- the unchanged-file cache ------------------------------------------------
#: (abs path, rel) -> (mtime_ns, size, parsed module).  The rel is part
#: of the key because the same file linted under a different root gets
#: different ``rel``/``module`` fields.
_CACHE: Dict[Tuple[str, str], Tuple[int, int, ParsedModule]] = {}

#: pickle format tag; bump to invalidate stale on-disk caches.
_CACHE_MAGIC = "worxlint-cache-v1"


def clear_cache() -> None:
    """Drop every in-process cache entry (tests use this for cold runs)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


def _stat_key(path: Path) -> Optional[Tuple[int, int]]:
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


def _load_disk_cache(cache_path: Path) -> None:
    """Merge a pickled cache into the in-process one; stale or unreadable
    entries are simply ignored — the cache is purely an accelerator."""
    try:
        with open(cache_path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.PickleError, EOFError, AttributeError,
            ValueError):
        return
    if not isinstance(payload, dict) or payload.get("magic") != _CACHE_MAGIC:
        return
    for key, entry in payload.get("entries", {}).items():
        _CACHE.setdefault(key, entry)


def _save_disk_cache(cache_path: Path) -> None:
    try:
        with open(cache_path, "wb") as fh:
            pickle.dump({"magic": _CACHE_MAGIC, "entries": _CACHE}, fh)
    except (OSError, pickle.PickleError):
        pass  # best-effort persistence only


def parse_file(path: Path, root: Path) -> ParsedModule:
    """Read + parse one file; the only place ``ast.parse`` is called."""
    global PARSE_COUNT
    PARSE_COUNT += 1
    rel = path.relative_to(root).as_posix()
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    pragmas, holds = _extract_pragmas(source)
    return ParsedModule(path=path, rel=rel, module=_module_name(rel),
                        source=source, tree=tree,
                        pragmas=pragmas, holds=holds)


def parse_tree(root: Path, *, use_cache: bool = True,
               cache_path: Optional[Path] = None) -> List[ParsedModule]:
    """Parse every ``*.py`` under ``root`` once, sorted by path.

    With ``use_cache`` (the default) files whose ``(mtime_ns, size)``
    match a cached entry are returned without re-parsing; pass
    ``use_cache=False`` to force a full re-parse (``--no-cache``).
    ``cache_path`` additionally persists the cache across processes.
    """
    if use_cache and cache_path is not None and cache_path.is_file():
        _load_disk_cache(cache_path)
    modules: List[ParsedModule] = []
    dirty = False
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        key = (str(path), rel)
        stat = _stat_key(path) if use_cache else None
        if stat is not None:
            entry = _CACHE.get(key)
            if entry is not None and (entry[0], entry[1]) == stat:
                modules.append(entry[2])
                continue
        parsed = parse_file(path, root)
        modules.append(parsed)
        if stat is not None:
            _CACHE[key] = (stat[0], stat[1], parsed)
            dirty = True
    if use_cache and cache_path is not None and dirty:
        _save_disk_cache(cache_path)
    return modules
