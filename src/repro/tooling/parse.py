"""The shared parse: every module under the linted root is read and
``ast.parse``-d exactly once, no matter how many passes run.

Passes never touch the filesystem or call :func:`ast.parse` themselves —
they receive :class:`ParsedModule` objects carrying the tree, the source,
and the pre-extracted pragma map.  :data:`PARSE_COUNT` counts calls to
:func:`parse_file` so the test suite can assert the single-parse property
instead of trusting it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional

__all__ = ["ParsedModule", "PARSE_COUNT", "parse_count", "parse_file",
           "parse_tree"]

#: Total ast.parse invocations since import — the re-parse canary.
PARSE_COUNT = 0

#: ``# worx: ok`` / ``# worx: ok WORX103`` / ``# worx: ok WORX101, WORX105``
_PRAGMA = re.compile(r"#\s*worx:\s*ok\b\s*([A-Za-z0-9_,\s]*)")


def parse_count() -> int:
    """Current value of the parse counter (read through a function so
    tests are immune to ``from ... import`` snapshotting)."""
    return PARSE_COUNT


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every pass."""

    path: Path            #: absolute path on disk
    rel: str              #: posix path relative to the linted root
    module: str           #: dotted module name (``repro.sim.kernel``)
    source: str
    tree: ast.Module
    #: physical line -> suppressed rule ids; ``None`` means *all* rules
    #: (a bare ``# worx: ok``).
    pragmas: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted package containing this module (itself if a package)."""
        if self.module.endswith("__init__") or "." not in self.module:
            return self.module.rsplit(".__init__", 1)[0]
        return self.module.rsplit(".", 1)[0]

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True when a same-line pragma waives ``rule_id``."""
        if line not in self.pragmas:
            return False
        rules = self.pragmas[line]
        return rules is None or rule_id in rules


def _extract_pragmas(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Suppression pragmas from *comment tokens only* — a pragma spelled
    inside a string literal is data, not an annotation."""
    pragmas: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            names = frozenset(
                part.strip().upper()
                for part in re.split(r"[,\s]+", match.group(1))
                if part.strip())
            pragmas[tok.start[0]] = names or None
    except tokenize.TokenError:
        pass  # ast.parse will report the real syntax problem
    return pragmas


def _module_name(rel: str) -> str:
    parts = rel[:-3].split("/")  # strip ".py"
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_file(path: Path, root: Path) -> ParsedModule:
    """Read + parse one file; the only place ``ast.parse`` is called."""
    global PARSE_COUNT
    PARSE_COUNT += 1
    rel = path.relative_to(root).as_posix()
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    return ParsedModule(path=path, rel=rel, module=_module_name(rel),
                        source=source, tree=tree,
                        pragmas=_extract_pragmas(source))


def parse_tree(root: Path) -> List[ParsedModule]:
    """Parse every ``*.py`` under ``root`` once, sorted by path."""
    modules: List[ParsedModule] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        modules.append(parse_file(path, root))
    return modules
