"""Typed lint findings and the committed-baseline format.

A :class:`Finding` is the single currency of the framework: every pass
emits them, the runner partitions them (active / pragma-suppressed /
baselined), and both the text and ``--json`` renderers consume them
unchanged.  The baseline file grandfathers known findings by their
``rule:path:line`` key so a new rule can land before every violation is
fixed — without turning the gate off.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Set

__all__ = ["Finding", "SEVERITIES", "load_baseline", "render_baseline",
           "write_baseline"]

#: Recognised severity grades, mildest last.  Severity is informational
#: (the gate fails on any active finding); it tells a reader how urgently
#: a grandfathered entry should be burned down.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source line."""

    path: str        #: posix path relative to the linted root
    line: int        #: 1-based physical line of the offending node
    rule_id: str     #: e.g. ``"WORX101"``
    message: str     #: human explanation, one line
    severity: str = "error"

    @property
    def key(self) -> str:
        """Stable identity used by baselines and the planted-fixture
        tests: ``rule:path:line``."""
        return f"{self.rule_id}:{self.path}:{self.line}"

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule_id} "
                f"[{self.severity}] {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {"rule": self.rule_id, "path": self.path,
                "line": self.line, "severity": self.severity,
                "message": self.message}


_BASELINE_HEADER = """\
# worxlint baseline — grandfathered findings, one `rule:path:line` key
# per line (text after the key is a comment).  Regenerate with
#     repro-cli lint --refresh-baseline
# New code must stay clean: only keys listed here are exempt.
"""


def load_baseline(path: Path) -> Set[str]:
    """The set of grandfathered ``rule:path:line`` keys in ``path``.

    Missing file means an empty baseline; blank and ``#`` lines are
    ignored; anything after the key on a line is commentary.
    """
    if not path.is_file():
        return set()
    keys: Set[str] = set()
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        keys.add(line.split()[0])
    return keys


def render_baseline(findings: Iterable[Finding]) -> str:
    """The canonical baseline text for ``findings`` (sorted, annotated)."""
    lines: List[str] = [_BASELINE_HEADER]
    for finding in sorted(findings):
        lines.append(f"{finding.key}  # {finding.message}")
    return "\n".join(lines) + "\n"


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    path.write_text(render_baseline(findings))
